//! A deterministic **logical** write-ahead log for the mutation ops.
//!
//! Records describe operations (`upsert key += delta`), not physical page
//! images: replaying them through the same latch-free primitives rebuilds
//! the table bit-identically because every mutation is commutative within
//! an epoch (see `amac_hashtable`'s frozen-boundary discipline). The log
//! is a plain in-memory vector with a **sealed frontier**: records behind
//! the frontier survive a simulated crash, the unsealed tail is lost —
//! exactly the durability contract of group commit, where the frontier
//! advances at commit-group boundaries (the serving layer seals at wave
//! boundaries; see `amac_server::ServeSession::drain_wal`).
//!
//! Costs are charged by the *appender* (the mutation op), not here:
//! `EngineStats::log_bytes` counts [`WalRecord::encoded_len`] per record
//! and `EngineStats::log_stalls` the amortized asymmetric write cost
//! `CostModel::write_latency() / group` (arxiv 1809.09395) — keeping this
//! module pure data, and therefore Miri-checkable in seconds.
//!
//! # Quickstart
//!
//! This doctest is mirrored as the first half of `examples/recovery.rs`:
//!
//! ```
//! use amac_tier::{CostModel, Wal, WalRecord};
//!
//! let mut wal = Wal::new();
//! wal.append(WalRecord::Insert { key: 7, payload: 70 });
//! wal.append(WalRecord::Upsert { key: 7, delta: 5 });
//! wal.seal(); // group commit: both records are now durable
//! wal.append(WalRecord::Delete { key: 7 }); // ...this one is not
//! wal.crash(); // the unsealed tail is lost
//! assert_eq!(wal.sealed(), &[
//!     WalRecord::Insert { key: 7, payload: 70 },
//!     WalRecord::Upsert { key: 7, delta: 5 },
//! ]);
//!
//! // The encoding is fixed-width and round-trips exactly.
//! let bytes: Vec<u8> = wal.sealed().iter().flat_map(|r| r.encode()).collect();
//! assert_eq!(bytes.len() as u64, wal.sealed_bytes());
//! assert_eq!(WalRecord::decode_all(&bytes).unwrap(), wal.sealed());
//!
//! // What the appender charges per record: asymmetric write latency,
//! // amortized over an in-flight window of 10 by group commit.
//! let model = CostModel::default();
//! assert_eq!(model.write_latency(), 16);
//! assert_eq!(model.write_latency().div_ceil(10), 2);
//! ```

/// One logical mutation, as appended by `amac_ops::mutate::MutateOp` and
/// re-applied by `amac_ops::mutate::ReplayOp`.
///
/// `Copy` on purpose: replay feeds records straight through the
/// `LookupOp` input contract (`type Input: Copy`), so a WAL segment can
/// be replayed by any executor without conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// Prepend a fresh `(key, payload)` node unconditionally (no dedup).
    Insert {
        /// Tuple key.
        key: u64,
        /// Tuple payload.
        payload: u64,
    },
    /// Add `delta` to `key`'s payload, creating the tuple if absent.
    Upsert {
        /// Tuple key.
        key: u64,
        /// Wrapping payload increment.
        delta: u64,
    },
    /// Tombstone every live tuple with `key`.
    Delete {
        /// Tuple key.
        key: u64,
    },
}

impl Default for WalRecord {
    fn default() -> Self {
        WalRecord::Upsert { key: 0, delta: 0 }
    }
}

const TAG_INSERT: u8 = 1;
const TAG_UPSERT: u8 = 2;
const TAG_DELETE: u8 = 3;

impl WalRecord {
    /// The key this record mutates.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            WalRecord::Insert { key, .. }
            | WalRecord::Upsert { key, .. }
            | WalRecord::Delete { key } => key,
        }
    }

    /// Encoded size in bytes: one tag byte plus the fixed-width
    /// little-endian fields. This is what mutation ops charge to
    /// `EngineStats::log_bytes` per append.
    #[inline]
    pub fn encoded_len(&self) -> u64 {
        match self {
            WalRecord::Insert { .. } | WalRecord::Upsert { .. } => 17,
            WalRecord::Delete { .. } => 9,
        }
    }

    /// Serialize to the fixed-width on-log form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        match *self {
            WalRecord::Insert { key, payload } => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&payload.to_le_bytes());
            }
            WalRecord::Upsert { key, delta } => {
                out.push(TAG_UPSERT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
            WalRecord::Delete { key } => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
        out
    }

    /// Decode one record from the front of `bytes`, returning it and the
    /// number of bytes consumed. `None` on a truncated or unknown-tag
    /// prefix (a torn tail write).
    pub fn decode(bytes: &[u8]) -> Option<(WalRecord, usize)> {
        let tag = *bytes.first()?;
        let word = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
        };
        match tag {
            TAG_INSERT => Some((WalRecord::Insert { key: word(1)?, payload: word(9)? }, 17)),
            TAG_UPSERT => Some((WalRecord::Upsert { key: word(1)?, delta: word(9)? }, 17)),
            TAG_DELETE => Some((WalRecord::Delete { key: word(1)? }, 9)),
            _ => None,
        }
    }

    /// Decode a whole log segment. `None` if any record is torn or has an
    /// unknown tag.
    pub fn decode_all(mut bytes: &[u8]) -> Option<Vec<WalRecord>> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (rec, used) = WalRecord::decode(bytes)?;
            out.push(rec);
            bytes = &bytes[used..];
        }
        Some(out)
    }
}

/// An append-only record log with a sealed (durable) frontier.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    records: Vec<WalRecord>,
    sealed: usize,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append one record to the unsealed tail.
    #[inline]
    pub fn append(&mut self, rec: WalRecord) {
        self.records.push(rec);
    }

    /// Append a drained segment (e.g. one serving wave's records).
    pub fn extend(&mut self, recs: impl IntoIterator<Item = WalRecord>) {
        self.records.extend(recs);
    }

    /// Group commit: advance the durable frontier over everything
    /// appended so far.
    #[inline]
    pub fn seal(&mut self) {
        self.sealed = self.records.len();
    }

    /// Simulated crash: the unsealed tail never reached the log device
    /// and is discarded.
    pub fn crash(&mut self) {
        self.records.truncate(self.sealed);
    }

    /// The durable prefix — what recovery replays.
    #[inline]
    pub fn sealed(&self) -> &[WalRecord] {
        &self.records[..self.sealed]
    }

    /// Records appended since the last [`seal`](Wal::seal).
    #[inline]
    pub fn unsealed(&self) -> &[WalRecord] {
        &self.records[self.sealed..]
    }

    /// Total records (sealed + unsealed).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were ever appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encoded size of the durable prefix in bytes.
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed().iter().map(WalRecord::encoded_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let recs = [
            WalRecord::Insert { key: u64::MAX - 1, payload: 3 },
            WalRecord::Upsert { key: 0, delta: u64::MAX },
            WalRecord::Delete { key: 42 },
        ];
        for r in recs {
            let bytes = r.encode();
            assert_eq!(bytes.len() as u64, r.encoded_len());
            let (back, used) = WalRecord::decode(&bytes).expect("decodes");
            assert_eq!(back, r);
            assert_eq!(used, bytes.len());
        }
        let all: Vec<u8> = recs.iter().flat_map(WalRecord::encode).collect();
        assert_eq!(WalRecord::decode_all(&all).expect("segment decodes"), recs);
    }

    #[test]
    fn torn_and_unknown_prefixes_are_rejected() {
        let full = WalRecord::Upsert { key: 9, delta: 9 }.encode();
        for cut in 1..full.len() {
            assert_eq!(WalRecord::decode(&full[..cut]), None, "torn at {cut}");
        }
        assert_eq!(WalRecord::decode(&[0xFF]), None, "unknown tag");
        assert_eq!(WalRecord::decode_all(&full[..5]), None);
    }

    #[test]
    fn seal_frontier_survives_crash_and_tail_is_lost() {
        let mut wal = Wal::new();
        wal.append(WalRecord::Insert { key: 1, payload: 10 });
        wal.append(WalRecord::Upsert { key: 1, delta: 1 });
        wal.seal();
        wal.extend([WalRecord::Delete { key: 1 }, WalRecord::Upsert { key: 2, delta: 2 }]);
        assert_eq!(wal.len(), 4);
        assert_eq!(wal.unsealed().len(), 2);
        wal.crash();
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.unsealed(), &[]);
        assert_eq!(
            wal.sealed(),
            &[WalRecord::Insert { key: 1, payload: 10 }, WalRecord::Upsert { key: 1, delta: 1 }]
        );
        assert_eq!(wal.sealed_bytes(), 34);
        assert!(!wal.is_empty());
    }

    #[test]
    fn default_record_is_a_no_op_upsert() {
        assert_eq!(WalRecord::default(), WalRecord::Upsert { key: 0, delta: 0 });
        assert_eq!(WalRecord::default().key(), 0);
    }
}
