//! Seeded, deterministic crash injection.
//!
//! [`CrashPlan`] follows the same pure-hash discipline as
//! [`FaultPlan`](crate::FaultPlan): the crash point is a function of the
//! seed alone — never of schedule, thread count, or wall clock — so a
//! crash/recovery sweep is bit-reproducible and a recovered run can be
//! compared field-for-field against its crash-free reference.

use crate::fault::mix;

const SALT_WAVE: u64 = 0xC4A5_4000_0000_0003;
const SALT_TICK: u64 = 0xC4A5_4000_0000_0004;

/// A seeded plan that kills a serving session at one injected point.
///
/// The plan picks a *wave* (which serving batch dies) and a *tick
/// fraction* (how deep into that wave's simulated time the kill lands).
/// Both draws are pure hashes of the seed, mirroring
/// [`FaultPlan`](crate::FaultPlan)'s per-token rolls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Injection seed; every crash decision derives from it.
    pub seed: u64,
}

impl CrashPlan {
    /// A plan drawing every decision from `seed`.
    pub fn new(seed: u64) -> Self {
        CrashPlan { seed }
    }

    /// Which of `waves` serving waves the crash lands in.
    pub fn wave(&self, waves: usize) -> usize {
        if waves == 0 {
            return 0;
        }
        (mix(self.seed ^ SALT_WAVE) % waves as u64) as usize
    }

    /// The simulated tick (within `[0, horizon)`) at which the session
    /// dies, `horizon` being the crash wave's crash-free duration. The
    /// fraction is drawn per-mille so nearby horizons crash at
    /// proportionally similar depths.
    pub fn tick(&self, horizon: u64) -> u64 {
        if horizon == 0 {
            return 0;
        }
        let per_mille = mix(self.seed ^ SALT_TICK) % 1000;
        horizon * per_mille / 1000
    }

    /// Derive an unrelated plan for scenario `attempt` of a sweep.
    pub fn reseeded(&self, attempt: u32) -> Self {
        CrashPlan { seed: mix(self.seed ^ (attempt as u64 + 1).wrapping_mul(SALT_TICK)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let p = CrashPlan::new(42);
        assert_eq!(p.wave(8), CrashPlan::new(42).wave(8));
        assert_eq!(p.tick(1000), CrashPlan::new(42).tick(1000));
        assert_ne!(p.tick(1_000_000), CrashPlan::new(43).tick(1_000_000));
    }

    #[test]
    fn draws_stay_in_range_and_spread() {
        let mut waves = [0usize; 4];
        let mut early = 0;
        for s in 0..200u64 {
            let p = CrashPlan::new(s);
            let w = p.wave(4);
            assert!(w < 4);
            waves[w] += 1;
            let t = p.tick(1000);
            assert!(t < 1000);
            if t < 500 {
                early += 1;
            }
        }
        assert!(waves.iter().all(|&c| c > 20), "wave draw is not degenerate: {waves:?}");
        assert!((50..150).contains(&early), "tick draw is not degenerate: {early}");
    }

    #[test]
    fn degenerate_horizons_crash_at_zero() {
        let p = CrashPlan::new(7);
        assert_eq!(p.wave(0), 0);
        assert_eq!(p.tick(0), 0);
    }

    #[test]
    fn reseeded_plans_diverge() {
        let p = CrashPlan::new(9);
        assert_ne!(p.reseeded(0), p.reseeded(1));
        assert_ne!(p.reseeded(0).seed, p.seed);
    }
}
