//! Tiered far-memory placement and a **deterministic** latency cost model.
//!
//! The paper's claim is about *latency tolerance*: a deep in-flight window
//! hides the latency of dependent chain loads. Every counter this repo
//! gated before this crate (`nodes_per_lookup`, tag rejects, passes/bytes)
//! measures *work*, not tolerance — on a 1-CPU CI host wall time cannot
//! show hiding either. The far-memory line of follow-up work (AMAU,
//! arxiv 2404.11044; Twin-Load, arxiv 1505.03476) frames the setting
//! where tolerance matters most: structures partially resident in
//! CXL-class memory whose loads cost many× DRAM latency.
//!
//! This crate makes that setting measurable without far-memory hardware:
//!
//! * [`TierPolicy`] assigns each memory region — the bucket-header array
//!   and every [`IndexedArena`](amac_mem::arena::IndexedArena) slab (the
//!   legacy layout's pointer chunks map onto slab 0) — to a
//!   [`Tier::Near`] or [`Tier::Far`] tier;
//! * [`CostModel`] prices a load per tier in simulated ticks;
//! * [`SimClock`] charges a per-executor simulated clock: a prefetch
//!   issues an asynchronous load completing at `now + tier_latency`, and
//!   a code stage that dereferences the line *earlier* stalls until it
//!   arrives. The accumulated [`sim_cycles`](amac::engine::EngineStats::sim_cycles)
//!   (work ticks) and [`sim_stalls`](amac::engine::EngineStats::sim_stalls)
//!   (exposed-latency ticks) drain into `EngineStats` through the same
//!   `flush_observed` contract as `nodes_visited`, so Mux lane ledgers
//!   and morsel-session reuse stay exact.
//!
//! # Tick rules
//!
//! The clock is a pure counter — no `rdtsc`, no `Instant` — so every
//! derived metric is bit-reproducible:
//!
//! 1. every executed code stage (`start`, productive or blocked `step`)
//!    costs **one tick**, charged to `sim_cycles`;
//! 2. every executor visit to an idle window slot (a GP/SPP no-op check,
//!    a drained AMAC slot) costs **one tick** too, forwarded by the
//!    executors via `LookupOp::sim_idle` — charged to elapsed time only,
//!    never to `sim_cycles` (so `sim_cycles` is identical across thread
//!    counts and schedulings);
//! 3. a prefetch records `ready_at = now + latency(tier)`; the step that
//!    dereferences the line first advances `now` to `ready_at` if it got
//!    there early, charging the difference to `sim_stalls`.
//!
//! An executor that re-touches a slot after `latency` other slot visits
//! therefore stalls **zero** ticks — exactly the paper's hiding argument,
//! now as arithmetic: AMAC with window `M > latency` stays stall-free at
//! any far multiplier, while GP's sequential bailout stages expose
//! `latency − 1` ticks each, so its stall share grows linearly with the
//! far multiplier (`bench/bin/tier.rs` sweeps and gates this shape).
//!
//! # Quickstart
//!
//! This doctest is mirrored as the first half of `examples/tier.rs`
//! (run it with `cargo run --release --example tier`; the example's
//! second half sweeps the real probe operator, which this crate cannot
//! depend on):
//!
//! ```
//! use amac::engine::{EngineStats, Technique, TuningParams};
//! use amac_tier::{CostModel, SimClock, Tier, TierPolicy, TierSpec};
//!
//! // Chain nodes in far memory at 8x DRAM latency, headers near; a
//! // cross-shard copy of the same structure would cost 16x per load.
//! let spec = TierSpec {
//!     model: CostModel {
//!         near_latency: 4,
//!         far_multiplier: 8,
//!         write_multiplier: 4,
//!         remote_multiplier: 16,
//!     },
//!     policy: TierPolicy::HeadersNear,
//! };
//! assert_eq!(spec.model.latency(Tier::Near), 4);
//! assert_eq!(spec.model.latency(Tier::Far), 32);
//! assert_eq!(spec.model.latency(Tier::Remote), 64);
//! assert_eq!(spec.policy.header_tier(), Tier::Near);
//! assert_eq!(spec.policy.slab_tier(0), Tier::Far);
//!
//! // The clock an op embeds: issue, do other work, touch.
//! let mut clock = spec.clock();
//! clock.stage();                      // stage 0 executes (1 tick)
//! let ready = clock.issue(Tier::Far); // async load lands at now + 32
//! for _ in 0..10 {
//!     clock.idle(1);                  // only 10 ticks of other work...
//! }
//! clock.touch(ready);                 // ...so the deref stalls 22 ticks
//! clock.stage();
//! let mut stats = EngineStats::default();
//! clock.flush(&mut stats);
//! assert_eq!(stats.sim_cycles, 2);
//! assert_eq!(stats.sim_stalls, 22);
//!
//! // A window deeper than the far latency would have hidden all of it:
//! // TuningParams::auto_sim picks that window from the simulated clock.
//! let _ = TuningParams::default();
//! ```

#![warn(missing_docs)]

mod crash;
mod fault;
mod wal;

pub use crash::CrashPlan;
pub use fault::{fault_token, FaultPlan, LoadOutcome};
pub use wal::{Wal, WalRecord};

use amac::engine::EngineStats;

/// Which memory tier a region lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Local DRAM: loads cost [`CostModel::near_latency`] ticks.
    Near,
    /// Far/CXL-class memory: loads cost `near_latency × far_multiplier`.
    Far,
    /// Another shard's memory across the simulated interconnect: loads
    /// cost `near_latency × remote_multiplier` and each one is a
    /// request/response message-hop pair carrying one 64-byte cache line
    /// (counted into [`EngineStats::remote_loads`] /
    /// [`EngineStats::remote_bytes`](amac::engine::EngineStats::remote_bytes)).
    Remote,
}

/// Bytes one remote load moves across the interconnect: a request for —
/// and a response carrying — one cache line.
pub const REMOTE_LINE_BYTES: u64 = 64;

/// Convert a [`Tier`] into the tracing layer's tier label. Lives here
/// (rather than in `amac_trace`) because the tracing crate sits below
/// this one in the dependency graph: it must not know about tier types.
pub fn trace_tier(t: Tier) -> amac_trace::TierKind {
    match t {
        Tier::Near => amac_trace::TierKind::Near,
        Tier::Far => amac_trace::TierKind::Far,
        Tier::Remote => amac_trace::TierKind::Remote,
    }
}

/// Deterministic load-latency model, in simulated ticks.
///
/// One tick is one executed code stage (see the crate docs' tick rules),
/// so `near_latency = 4` reads as "a DRAM load takes as long as four code
/// stages" — the same shape as the paper's cycles-per-stage vs
/// memory-latency argument, scaled down so CI-sized windows exercise it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Ticks from prefetch issue to line arrival in the near tier.
    pub near_latency: u64,
    /// Far latency as a multiple of near (`1` = no far penalty — the
    /// tiering-off reference every sweep compares against).
    pub far_multiplier: u64,
    /// Persistent-log *write* latency as a multiple of `near_latency` —
    /// the asymmetric NVM write cost ("A Case for Asymmetric Non-Volatile
    /// Memory Architecture", arxiv 1809.09395: NVM writes are several×
    /// slower than reads). Charged per appended [`WalRecord`], amortized
    /// over the AMU commit group by group commit (see
    /// `EngineStats::log_stalls`).
    pub write_multiplier: u64,
    /// Remote (cross-shard) latency as a multiple of `near_latency` —
    /// one interconnect message-hop pair. Should exceed `far_multiplier`:
    /// the narrow interface of Twin-Load-class designs costs more than a
    /// local CXL load.
    pub remote_multiplier: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { near_latency: 4, far_multiplier: 1, write_multiplier: 4, remote_multiplier: 16 }
    }
}

impl CostModel {
    /// The default model at a given far multiplier (the sweep axis of
    /// `bench/bin/tier.rs`).
    pub fn with_multiplier(far_multiplier: u64) -> Self {
        CostModel { far_multiplier: far_multiplier.max(1), ..Default::default() }
    }

    /// The default model at a given remote multiplier (the cross-shard
    /// axis of `bench/bin/shard.rs`).
    pub fn with_remote(remote_multiplier: u64) -> Self {
        CostModel { remote_multiplier: remote_multiplier.max(1), ..Default::default() }
    }

    /// Ticks from prefetch issue to line arrival in `tier`.
    #[inline(always)]
    pub fn latency(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Near => self.near_latency,
            Tier::Far => self.near_latency * self.far_multiplier.max(1),
            Tier::Remote => self.near_latency * self.remote_multiplier.max(1),
        }
    }

    /// The far-tier latency (`latency(Tier::Far)`) — what
    /// `TuningParams::auto_sim` must out-window to stay stall-free.
    #[inline]
    pub fn far_latency(&self) -> u64 {
        self.latency(Tier::Far)
    }

    /// Ticks one persistent log write takes:
    /// `near_latency × write_multiplier` — the asymmetric write cost the
    /// WAL charges per record before group-commit amortization.
    #[inline]
    pub fn write_latency(&self) -> u64 {
        self.near_latency * self.write_multiplier.max(1)
    }

    /// The remote-tier latency (`latency(Tier::Remote)`) — one
    /// cross-shard message-hop pair on the simulated interconnect.
    #[inline]
    pub fn remote_latency(&self) -> u64 {
        self.latency(Tier::Remote)
    }
}

/// Placement policy: which tier each memory region is assigned to.
///
/// Regions are structural, matching how the tables allocate: the bucket
/// **header array** (touched by code stage 0 of every lookup) and the
/// **chain-node slabs** of the table's `IndexedArena` (touched by every
/// later hop). The legacy pointer layout's chunks have no slab indices;
/// its nodes are charged as slab `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// Everything in DRAM — the cost model's control group.
    AllNear,
    /// Headers (hot, dense, one per bucket) pinned near; every chain-node
    /// slab far. This is the "payloads far / headers near" placement: the
    /// working set that fits in DRAM stays there, the long tail of
    /// overflow nodes pays far latency.
    HeadersNear,
    /// Headers and all slabs far — the whole structure demoted.
    AllFar,
    /// Headers plus the first `n` arena slabs near, the rest far: the
    /// slab-granular placement (slabs grow geometrically, so `n` slabs
    /// hold the `BASE·(2^n − 1)` oldest nodes — a "hot head of the arena
    /// in DRAM, cold growth tail in CXL" split).
    NearSlabs(u32),
    /// The whole structure lives on **another shard**: headers and every
    /// slab are priced at [`Tier::Remote`] and each load crosses the
    /// simulated interconnect. This is how a cross-shard probe reuses the
    /// local operators unchanged — same state machines, remote prices.
    Remote,
}

impl TierPolicy {
    /// Tier of the bucket-header array.
    #[inline(always)]
    pub fn header_tier(&self) -> Tier {
        match self {
            TierPolicy::AllFar => Tier::Far,
            TierPolicy::Remote => Tier::Remote,
            _ => Tier::Near,
        }
    }

    /// Tier of arena slab `slab` (from
    /// [`slab_of_index`](amac_mem::arena::slab_of_index)).
    #[inline(always)]
    pub fn slab_tier(&self, slab: u32) -> Tier {
        match self {
            TierPolicy::AllNear => Tier::Near,
            TierPolicy::HeadersNear | TierPolicy::AllFar => Tier::Far,
            TierPolicy::NearSlabs(n) => {
                if slab < *n {
                    Tier::Near
                } else {
                    Tier::Far
                }
            }
            TierPolicy::Remote => Tier::Remote,
        }
    }

    /// One rung down the degradation ladder: the next-cheaper placement a
    /// circuit breaker falls back to when this one keeps faulting (fewer
    /// far loads → fewer fault opportunities → recovery). `AllNear` has
    /// nowhere left to go.
    pub fn degrade(&self) -> Option<TierPolicy> {
        match self {
            TierPolicy::AllFar => Some(TierPolicy::HeadersNear),
            TierPolicy::HeadersNear | TierPolicy::NearSlabs(_) => Some(TierPolicy::AllNear),
            // A faulting interconnect degrades to serving from a local
            // replica (the router's job to provide); one rung, then done.
            TierPolicy::Remote => Some(TierPolicy::AllNear),
            TierPolicy::AllNear => None,
        }
    }

    /// Short label for tables and JSON (`all-near`, `headers-near`, ...).
    pub fn label(&self) -> String {
        match self {
            TierPolicy::AllNear => "all-near".into(),
            TierPolicy::HeadersNear => "headers-near".into(),
            TierPolicy::AllFar => "all-far".into(),
            TierPolicy::NearSlabs(n) => format!("near-slabs-{n}"),
            TierPolicy::Remote => "remote".into(),
        }
    }
}

/// A cost model plus a placement policy — the one `Copy` value the op
/// configs carry (`ProbeConfig::tier`, `GroupByConfig::tier`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Load latencies per tier.
    pub model: CostModel,
    /// Region → tier assignment.
    pub policy: TierPolicy,
}

impl TierSpec {
    /// Far-only placement at `far_multiplier` with headers pinned near —
    /// the sweep configuration of `bench/bin/tier.rs`.
    pub fn headers_near(far_multiplier: u64) -> Self {
        TierSpec {
            model: CostModel::with_multiplier(far_multiplier),
            policy: TierPolicy::HeadersNear,
        }
    }

    /// Whole-structure-remote placement at `remote_multiplier` — what a
    /// cross-shard sub-run of `amac_shard` prices its loads with.
    pub fn remote(remote_multiplier: u64) -> Self {
        TierSpec { model: CostModel::with_remote(remote_multiplier), policy: TierPolicy::Remote }
    }

    /// A fresh clock charging this spec.
    pub fn clock(&self) -> SimClock {
        SimClock::new(*self)
    }
}

/// The per-op simulated clock (see the crate docs' tick rules).
///
/// One clock per op instance, embedded behind `Option` so untiered runs
/// pay a predictable-branch test and nothing else. Composed ops keep
/// their member clocks in lock-step through the
/// `LookupOp::{sim_now, sim_advance_to}` protocol (`Mux` lanes, fused
/// `Chain` stages), which `advance_to` implements: the clock is monotone,
/// so lifting it to a neighbour's `now` is exactly "that much wall time
/// passed while others executed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    spec: TierSpec,
    /// Current simulated time.
    now: u64,
    /// Work ticks since the last [`flush`](SimClock::flush).
    work: u64,
    /// Stall ticks since the last [`flush`](SimClock::flush).
    stalls: u64,
    /// Optional fault plan for far-tier loads (see [`FaultPlan`]).
    fault: Option<FaultPlan>,
    /// Failed loads since the last [`flush`](SimClock::flush).
    faults: u64,
    /// Cross-shard loads issued since the last [`flush`](SimClock::flush)
    /// — each one a request/response message pair moving
    /// [`REMOTE_LINE_BYTES`]. Coalesced duplicates never re-issue, so
    /// this counts distinct interconnect messages, not lane births.
    remote: u64,
}

impl SimClock {
    /// A clock at `t = 0` charging `spec`.
    pub fn new(spec: TierSpec) -> Self {
        SimClock { spec, now: 0, work: 0, stalls: 0, fault: None, faults: 0, remote: 0 }
    }

    /// Attach a fault plan: far-tier loads issued through the checked
    /// entry points ([`issue_slab_checked`](SimClock::issue_slab_checked),
    /// [`issue_header_checked`](SimClock::issue_header_checked)) now
    /// resolve to a [`LoadOutcome`] under `plan`. Near loads and the
    /// unchecked entry points are unaffected.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    #[inline(always)]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The spec this clock charges.
    #[inline(always)]
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    /// Current simulated time.
    #[inline(always)]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Charge one executed code stage (rule 1).
    #[inline(always)]
    pub fn stage(&mut self) {
        self.now += 1;
        self.work += 1;
    }

    /// Let `ticks` of somebody else's time pass (rule 2: executor idle
    /// visits, other Mux lanes' stages, the sibling stage of a fused
    /// chain).
    #[inline(always)]
    pub fn idle(&mut self, ticks: u64) {
        self.now += ticks;
    }

    /// Lift the clock to `now` if it is behind (the composition
    /// protocol; monotone, so a stale caller is a no-op).
    #[inline(always)]
    pub fn advance_to(&mut self, now: u64) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Issue an asynchronous load into `tier`: returns the tick the line
    /// arrives (store it in the per-lookup state next to the prefetched
    /// address).
    #[inline(always)]
    pub fn issue(&mut self, tier: Tier) -> u64 {
        if tier == Tier::Remote {
            self.remote += 1;
        }
        self.now + self.spec.model.latency(tier)
    }

    /// Issue into the tier of the header array.
    #[inline(always)]
    pub fn issue_header(&mut self) -> u64 {
        self.issue(self.spec.policy.header_tier())
    }

    /// Issue into the tier of arena slab `slab`.
    #[inline(always)]
    pub fn issue_slab(&mut self, slab: u32) -> u64 {
        self.issue(self.spec.policy.slab_tier(slab))
    }

    /// Issue a load into `tier` under the fault plan: the common
    /// implementation behind the `_checked` entry points. `slab` is
    /// `None` for header loads (sustained slab degradation cannot apply).
    #[inline]
    fn issue_checked(&mut self, tier: Tier, slab: Option<u32>, token: u64) -> LoadOutcome {
        let lat = self.spec.model.latency(tier);
        // The message is on the wire whatever the fault plan decides:
        // failed and delayed remote loads still crossed the interconnect.
        if tier == Tier::Remote {
            self.remote += 1;
        }
        let Some(plan) = self.fault else {
            return LoadOutcome::Ready(self.now + lat);
        };
        // Near loads never fault: local DRAM is not the narrow interface.
        if tier == Tier::Near {
            return LoadOutcome::Ready(self.now + lat);
        }
        if plan.fails(token) {
            self.faults += 1;
            return LoadOutcome::Failed;
        }
        let degraded = slab.is_some() && slab == plan.degraded_slab;
        if degraded || plan.spikes(token) {
            return LoadOutcome::Delayed(self.now + lat * plan.multiplier());
        }
        LoadOutcome::Ready(self.now + lat)
    }

    /// Fault-aware [`issue_header`](SimClock::issue_header): resolves the
    /// header load under the attached [`FaultPlan`] (always `Ready`
    /// without one, or when headers are near).
    #[inline]
    pub fn issue_header_checked(&mut self, token: u64) -> LoadOutcome {
        self.issue_checked(self.spec.policy.header_tier(), None, token)
    }

    /// Fault-aware [`issue_slab`](SimClock::issue_slab): resolves a chain
    /// load from `slab` under the attached [`FaultPlan`]. `token` should
    /// come from [`fault_token`]`(key, hop)` so the decision is a
    /// property of the workload, not of issue order.
    #[inline]
    pub fn issue_slab_checked(&mut self, slab: u32, token: u64) -> LoadOutcome {
        self.issue_checked(self.spec.policy.slab_tier(slab), Some(slab), token)
    }

    /// Dereference a line that arrives at `ready_at` (rule 3): stall
    /// until it is resident.
    #[inline(always)]
    pub fn touch(&mut self, ready_at: u64) {
        if ready_at > self.now {
            self.stalls += ready_at - self.now;
            self.now = ready_at;
        }
    }

    /// Drain accumulated work/stall ticks into `stats` — the same
    /// drain-and-reset contract as `nodes_visited`, called from the op's
    /// `flush_observed`. `now` is *not* reset: the clock keeps running
    /// across morsel feeds, so `ready_at` values held by in-flight slots
    /// stay comparable.
    #[inline]
    pub fn flush(&mut self, stats: &mut EngineStats) {
        let (work, stalls) = self.flush_ticks();
        stats.sim_cycles += work;
        stats.sim_stalls += stalls;
        stats.load_faults += core::mem::take(&mut self.faults);
        let remote = core::mem::take(&mut self.remote);
        stats.remote_loads += remote;
        stats.remote_bytes += remote * REMOTE_LINE_BYTES;
    }

    /// [`flush`](SimClock::flush) as a raw `(work, stalls)` pair, for
    /// callers that report outside `EngineStats` (the coroutine ring).
    #[inline]
    pub fn flush_ticks(&mut self) -> (u64, u64) {
        (core::mem::take(&mut self.work), core::mem::take(&mut self.stalls))
    }
}

/// [`SimClock`] as the cost/fault model behind an AMU memory unit
/// (`amac::engine::amu`): the trait the explicit
/// issue/commit-group/wait-group protocol charges its loads against.
///
/// The mapping preserves the pre-AMU plumbing exactly:
///
/// * `Header` loads resolve unchecked ([`issue_header`](SimClock::issue_header))
///   — the header array is the dense hot region and was never routed
///   through the fault plan;
/// * `Slab` loads resolve through
///   [`issue_slab_checked`](SimClock::issue_slab_checked): `Ready`/`Delayed`
///   become a plain `ready_at`, `Failed` poisons the ticket (its
///   `ready_at` is still charged at plain slab latency so a coalesced
///   duplicate has a wait target);
/// * a duplicate request ([`resolve_dup`](amac::engine::amu::LoadBackend::resolve_dup))
///   re-runs *only*
///   the per-token fault decision — same decision, same fault counter as
///   a fresh issue would make — which is what keeps results and
///   `load_faults` bit-identical with coalescing on or off.
impl amac::engine::amu::LoadBackend for SimClock {
    #[inline(always)]
    fn stage(&mut self) {
        SimClock::stage(self);
    }

    #[inline(always)]
    fn idle(&mut self, ticks: u64) {
        SimClock::idle(self, ticks);
    }

    #[inline(always)]
    fn now(&self) -> u64 {
        SimClock::now(self)
    }

    #[inline(always)]
    fn advance_to(&mut self, now: u64) {
        SimClock::advance_to(self, now);
    }

    #[inline]
    fn resolve(&mut self, class: amac::engine::amu::AddrClass, token: u64) -> (u64, bool) {
        use amac::engine::amu::AddrClass;
        match class {
            AddrClass::Header { .. } => (self.issue_header(), false),
            AddrClass::Slab { slab, .. } => match self.issue_slab_checked(slab, token) {
                LoadOutcome::Ready(t) | LoadOutcome::Delayed(t) => (t, false),
                // Price the poisoned ticket's wait target directly — the
                // checked issue above already counted the message, so
                // re-entering issue() would double-charge a remote load.
                LoadOutcome::Failed => {
                    let tier = self.spec.policy.slab_tier(slab);
                    (self.now + self.spec.model.latency(tier), true)
                }
            },
        }
    }

    #[inline]
    fn resolve_dup(&mut self, class: amac::engine::amu::AddrClass, token: u64) -> bool {
        use amac::engine::amu::AddrClass;
        let AddrClass::Slab { slab, .. } = class else {
            return false;
        };
        let Some(plan) = self.fault else {
            return false;
        };
        if self.spec.policy.slab_tier(slab) == Tier::Near {
            return false;
        }
        if plan.fails(token) {
            self.faults += 1;
            return true;
        }
        false
    }

    #[inline(always)]
    fn wait_until(&mut self, ready_at: u64) {
        self.touch(ready_at);
    }

    #[inline]
    fn flush(&mut self, stats: &mut EngineStats) {
        SimClock::flush(self, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_scale_by_multiplier() {
        let m = CostModel::with_multiplier(8);
        assert_eq!(m.latency(Tier::Near), 4);
        assert_eq!(m.latency(Tier::Far), 32);
        assert_eq!(m.far_latency(), 32);
        assert_eq!(CostModel::default().latency(Tier::Far), 4, "1x far == near");
        assert_eq!(
            CostModel { far_multiplier: 0, ..Default::default() }.latency(Tier::Far),
            4,
            "far multiplier clamps to >= 1"
        );
        assert_eq!(CostModel::default().write_latency(), 16, "asymmetric write cost");
        assert_eq!(
            CostModel { write_multiplier: 0, ..Default::default() }.write_latency(),
            4,
            "write multiplier clamps to >= 1"
        );
        assert_eq!(CostModel::default().remote_latency(), 64, "16x default interconnect");
        assert_eq!(CostModel::with_remote(32).latency(Tier::Remote), 128);
        assert_eq!(
            CostModel { remote_multiplier: 0, ..Default::default() }.remote_latency(),
            4,
            "remote multiplier clamps to >= 1"
        );
    }

    #[test]
    fn policies_assign_documented_tiers() {
        assert_eq!(TierPolicy::AllNear.header_tier(), Tier::Near);
        assert_eq!(TierPolicy::AllNear.slab_tier(5), Tier::Near);
        assert_eq!(TierPolicy::HeadersNear.header_tier(), Tier::Near);
        assert_eq!(TierPolicy::HeadersNear.slab_tier(0), Tier::Far);
        assert_eq!(TierPolicy::AllFar.header_tier(), Tier::Far);
        assert_eq!(TierPolicy::AllFar.slab_tier(3), Tier::Far);
        let p = TierPolicy::NearSlabs(2);
        assert_eq!(p.header_tier(), Tier::Near);
        assert_eq!(p.slab_tier(0), Tier::Near);
        assert_eq!(p.slab_tier(1), Tier::Near);
        assert_eq!(p.slab_tier(2), Tier::Far);
        assert_eq!(p.label(), "near-slabs-2");
        assert_eq!(TierPolicy::Remote.header_tier(), Tier::Remote);
        assert_eq!(TierPolicy::Remote.slab_tier(0), Tier::Remote);
        assert_eq!(TierPolicy::Remote.slab_tier(7), Tier::Remote);
        assert_eq!(TierPolicy::Remote.label(), "remote");
    }

    #[test]
    fn clock_charges_stall_only_for_early_touches() {
        let mut c = TierSpec::headers_near(2).clock();
        // Far load issued at t=0 lands at t=8; 10 ticks of other work
        // pass first, so the touch is free.
        let ready = c.issue(Tier::Far);
        c.idle(10);
        c.touch(ready);
        // A second far load touched after only 3 ticks stalls 5.
        let ready = c.issue(Tier::Far);
        c.stage();
        c.idle(2);
        c.touch(ready);
        let mut s = EngineStats::default();
        c.flush(&mut s);
        assert_eq!(s.sim_cycles, 1);
        assert_eq!(s.sim_stalls, 5);
        // Flush drained the counters but kept the clock running.
        let mut s2 = EngineStats::default();
        c.flush(&mut s2);
        assert_eq!((s2.sim_cycles, s2.sim_stalls), (0, 0));
        assert!(c.now() > 0);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = TierSpec::headers_near(1).clock();
        c.idle(7);
        c.advance_to(3);
        assert_eq!(c.now(), 7, "stale advance is a no-op");
        c.advance_to(12);
        assert_eq!(c.now(), 12);
    }

    #[test]
    fn checked_issue_resolves_fault_plan_outcomes() {
        let plan = FaultPlan {
            seed: 11,
            fail_per_mille: 0,
            spike_per_mille: 0,
            spike_multiplier: 4,
            degraded_slab: Some(2),
        };
        let mut c = TierSpec::headers_near(8).clock().with_fault(plan);
        // No transient faults configured: a healthy slab is plain Ready
        // at far latency, the degraded slab is Delayed at 4x.
        assert_eq!(c.issue_slab_checked(0, fault_token(1, 0)), LoadOutcome::Ready(32));
        assert_eq!(c.issue_slab_checked(2, fault_token(1, 0)), LoadOutcome::Delayed(128));
        // Headers are near under this policy: never faulted.
        assert_eq!(c.issue_header_checked(fault_token(1, 0)), LoadOutcome::Ready(4));
        // Without a plan the checked path degenerates to issue().
        let mut plain = TierSpec::headers_near(8).clock();
        assert_eq!(plain.issue_slab_checked(2, fault_token(1, 0)), LoadOutcome::Ready(32));
        // An always-fail plan poisons every far load and counts it.
        let mut f = TierSpec::headers_near(8).clock().with_fault(FaultPlan::fail_only(5, 1000));
        assert_eq!(f.issue_slab_checked(0, fault_token(9, 1)), LoadOutcome::Failed);
        let mut s = EngineStats::default();
        f.flush(&mut s);
        assert_eq!(s.load_faults, 1);
        // ...and the drain-and-reset contract holds for faults too.
        let mut s2 = EngineStats::default();
        f.flush(&mut s2);
        assert_eq!(s2.load_faults, 0);
    }

    #[test]
    fn degrade_ladder_ends_at_all_near() {
        assert_eq!(TierPolicy::AllFar.degrade(), Some(TierPolicy::HeadersNear));
        assert_eq!(TierPolicy::HeadersNear.degrade(), Some(TierPolicy::AllNear));
        assert_eq!(TierPolicy::NearSlabs(3).degrade(), Some(TierPolicy::AllNear));
        assert_eq!(TierPolicy::Remote.degrade(), Some(TierPolicy::AllNear));
        assert_eq!(TierPolicy::AllNear.degrade(), None);
        // Every rung strictly reduces far exposure until none remains.
        let mut p = TierPolicy::AllFar;
        let mut rungs = 0;
        while let Some(next) = p.degrade() {
            p = next;
            rungs += 1;
            assert!(rungs <= 4, "degradation ladder must terminate");
        }
        assert_eq!(p, TierPolicy::AllNear);
    }

    #[test]
    fn load_backend_resolve_matches_checked_issue() {
        use amac::engine::amu::{AddrClass, LoadBackend};
        // Healthy clock: header resolves at near latency, slab at far.
        let mut c = TierSpec::headers_near(8).clock();
        assert_eq!(c.resolve(AddrClass::Header { line: 0 }, 0), (4, false));
        assert_eq!(c.resolve(AddrClass::Slab { slab: 0, line: 1 }, fault_token(1, 0)), (32, false));
        // A failing token poisons the ticket but still prices a wait
        // target, and a duplicate of the same token re-charges the fault.
        let mut f = TierSpec::headers_near(8).clock().with_fault(FaultPlan::fail_only(5, 1000));
        let (ready, failed) = f.resolve(AddrClass::Slab { slab: 0, line: 2 }, fault_token(9, 1));
        assert!(failed);
        assert_eq!(ready, 32, "failed loads still price plain slab latency");
        assert!(f.resolve_dup(AddrClass::Slab { slab: 0, line: 2 }, fault_token(9, 1)));
        let mut s = EngineStats::default();
        LoadBackend::flush(&mut f, &mut s);
        assert_eq!(s.load_faults, 2, "fresh and duplicate both charged");
        // Dups never fault on headers, near slabs, or plan-free clocks.
        assert!(!f.resolve_dup(AddrClass::Header { line: 0 }, fault_token(9, 1)));
        let mut near =
            TierSpec { model: CostModel::default(), policy: TierPolicy::AllNear }.clock();
        near.fault = Some(FaultPlan::fail_only(5, 1000));
        assert!(!near.resolve_dup(AddrClass::Slab { slab: 0, line: 0 }, fault_token(9, 1)));
        let mut plain = TierSpec::headers_near(8).clock();
        assert!(!plain.resolve_dup(AddrClass::Slab { slab: 0, line: 0 }, fault_token(9, 1)));
        // The trait's clock surface delegates to the inherent methods.
        LoadBackend::stage(&mut c);
        LoadBackend::idle(&mut c, 3);
        assert_eq!(LoadBackend::now(&c), 4);
        LoadBackend::advance_to(&mut c, 10);
        LoadBackend::wait_until(&mut c, 15);
        let mut s2 = EngineStats::default();
        LoadBackend::flush(&mut c, &mut s2);
        assert_eq!((s2.sim_cycles, s2.sim_stalls), (1, 5));
    }

    #[test]
    fn remote_loads_count_messages_not_duplicates() {
        use amac::engine::amu::{AddrClass, LoadBackend};
        let mut c = TierSpec::remote(16).clock();
        // Every load of a remote structure is one message-hop pair.
        assert_eq!(c.issue_header(), 64);
        assert_eq!(c.issue_slab(0), 64);
        assert_eq!(c.issue_slab_checked(1, fault_token(3, 0)), LoadOutcome::Ready(64));
        let mut s = EngineStats::default();
        c.flush(&mut s);
        assert_eq!(s.remote_loads, 3);
        assert_eq!(s.remote_bytes, 3 * REMOTE_LINE_BYTES);
        // Drain-and-reset: a second flush reports nothing.
        let mut s2 = EngineStats::default();
        c.flush(&mut s2);
        assert_eq!((s2.remote_loads, s2.remote_bytes), (0, 0));
        // A coalesced duplicate re-rolls the fault decision only — no new
        // message (that is the dedup the AMU protocol buys on hot remote
        // lines); a failed fresh issue still crossed the wire exactly once.
        let mut f = TierSpec::remote(16).clock().with_fault(FaultPlan::fail_only(5, 1000));
        let (_, failed) = f.resolve(AddrClass::Slab { slab: 0, line: 2 }, fault_token(9, 1));
        assert!(failed);
        assert!(f.resolve_dup(AddrClass::Slab { slab: 0, line: 2 }, fault_token(9, 1)));
        let mut fs = EngineStats::default();
        LoadBackend::flush(&mut f, &mut fs);
        assert_eq!(fs.remote_loads, 1, "dup and failed-arm pricing must not re-count");
        // Near and far placements never touch the remote counters.
        let mut near = TierSpec::headers_near(8).clock();
        let _ = near.issue_header();
        let _ = near.issue_slab(0);
        let mut ns = EngineStats::default();
        near.flush(&mut ns);
        assert_eq!((ns.remote_loads, ns.remote_bytes), (0, 0));
    }

    #[test]
    fn stall_share_helper_matches_ticks() {
        let mut c = TierSpec::headers_near(8).clock();
        let ready = c.issue(Tier::Far); // lands at 32
        c.stage(); // t = 1
        c.touch(ready); // stalls 31
        let mut s = EngineStats::default();
        c.flush(&mut s);
        assert_eq!(s.sim_cycles, 1);
        assert_eq!(s.sim_stalls, 31);
        assert!((s.stall_share() - 31.0 / 32.0).abs() < 1e-12);
    }
}
