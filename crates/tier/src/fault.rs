//! Seeded, schedule-invariant fault injection for the far tier.
//!
//! Real far-memory backends are a narrow, failure-prone interface: loads
//! time out, tails spike, a device or slab degrades for a while (the
//! AMAU and Twin-Load lines of work both model the far tier this way).
//! [`FaultPlan`] reproduces those three failure shapes *deterministically*
//! on top of the [`SimClock`](crate::SimClock): whether a given load
//! fails or spikes is a pure hash of `(seed, token)`, where the token is
//! derived from the lookup's key and hop index — **not** from issue
//! order — so the same plan produces the same fault set under any
//! executor, any thread count, and any Mux interleaving. That is what
//! lets `bench/bin/chaos.rs` gate recovery behavior with exact counters.
//!
//! Faults apply only to **far-tier** loads (a near-DRAM load does not
//! fail in this model); fault-free specs and `AllNear` placements are
//! untouched by construction.
//!
//! # Quickstart
//!
//! This doctest is mirrored as the first half of `examples/chaos.rs`:
//!
//! ```
//! use amac_tier::{fault_token, FaultPlan, LoadOutcome, Tier, TierSpec};
//!
//! // 5% of far loads fail, 10% spike to 4x latency, slab 1 is degraded.
//! let plan = FaultPlan {
//!     seed: 0xC0FFEE,
//!     fail_per_mille: 50,
//!     spike_per_mille: 100,
//!     spike_multiplier: 4,
//!     degraded_slab: Some(1),
//! };
//!
//! // Attach the plan to a tiered clock; far loads now resolve to a
//! // three-way LoadOutcome instead of always succeeding.
//! let spec = TierSpec::headers_near(8);
//! let mut clock = spec.clock().with_fault(plan);
//! let token = fault_token(0xDEADBEEF, 0); // (key, hop) — order-invariant
//! match clock.issue_slab_checked(0, token) {
//!     LoadOutcome::Ready(t) | LoadOutcome::Delayed(t) => assert!(t >= 32),
//!     LoadOutcome::Failed => {} // poisoned: the lookup must abort
//! }
//!
//! // Determinism: the same (plan, token) always resolves the same way.
//! assert_eq!(plan.fails(token), plan.fails(token));
//!
//! // Near loads never fault: an AllNear clock is bit-identical to a
//! // fault-free run.
//! let near = TierSpec { policy: amac_tier::TierPolicy::AllNear, ..spec };
//! let mut c = near.clock().with_fault(plan);
//! assert!(matches!(c.issue_slab_checked(0, token), LoadOutcome::Ready(_)));
//!
//! // Retries reseed, so a retried query dodges deterministic faults.
//! assert_ne!(plan.reseeded(1).seed, plan.seed);
//! ```

/// Resolution of a checked far-memory load.
///
/// The carried tick is the load's arrival time (store it in the
/// per-lookup state exactly like the unchecked
/// [`issue`](crate::SimClock::issue) return value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The load completes normally at the carried tick.
    Ready(u64),
    /// The load completes, but late: a tail spike or a degraded slab
    /// stretched its latency by [`FaultPlan::spike_multiplier`]. The
    /// lookup proceeds; the extra ticks surface as `sim_stalls` unless
    /// the window out-laps them.
    Delayed(u64),
    /// The load failed (transient device error). The lookup cannot
    /// continue; the op must retire it via `Step::Failed` and the
    /// serving layer decides whether to retry, degrade, or give up.
    Failed,
}

/// A deterministic, seeded plan of far-tier failures.
///
/// All probabilities are per-mille (`0..=1000`) over a pure hash of
/// `(seed, token)` — see [`fault_token`] — so a plan is a *function* from
/// loads to outcomes, not a random process: independent of executor,
/// schedule, thread count, and of how many other loads happened first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision; two plans with different seeds
    /// fault disjoint-looking subsets of the same workload.
    pub seed: u64,
    /// Per-mille of far loads that resolve to [`LoadOutcome::Failed`].
    pub fail_per_mille: u16,
    /// Per-mille of far loads that resolve to [`LoadOutcome::Delayed`]
    /// with [`spike_multiplier`](FaultPlan::spike_multiplier)× latency
    /// (evaluated after the fail test; a load fails *or* spikes, never
    /// both).
    pub spike_per_mille: u16,
    /// Latency multiplier for spiked and degraded loads (clamped to
    /// ≥ 1).
    pub spike_multiplier: u64,
    /// A slab in sustained degradation: **every** load from it is
    /// `Delayed` by the spike multiplier (transient fail/spike tests
    /// still apply first).
    pub degraded_slab: Option<u32>,
}

impl FaultPlan {
    /// A plan that only fails (no spikes, no degraded slab) — the
    /// minimal chaos configuration.
    pub fn fail_only(seed: u64, fail_per_mille: u16) -> Self {
        FaultPlan {
            seed,
            fail_per_mille,
            spike_per_mille: 0,
            spike_multiplier: 1,
            degraded_slab: None,
        }
    }

    /// The same plan under a retry: the attempt index is folded into the
    /// seed, so a retried lookup re-rolls every fault decision instead of
    /// deterministically hitting the identical failure forever.
    /// `reseeded(0)` is the plan itself.
    pub fn reseeded(&self, attempt: u32) -> Self {
        if attempt == 0 {
            return *self;
        }
        FaultPlan { seed: mix(self.seed ^ (attempt as u64).wrapping_mul(SALT_RETRY)), ..*self }
    }

    /// Whether the far load identified by `token` fails under this plan.
    #[inline]
    pub fn fails(&self, token: u64) -> bool {
        per_mille(mix(self.seed ^ token ^ SALT_FAIL)) < self.fail_per_mille as u64
    }

    /// Whether the far load identified by `token` latency-spikes under
    /// this plan (independent hash from the fail test).
    #[inline]
    pub fn spikes(&self, token: u64) -> bool {
        per_mille(mix(self.seed ^ token ^ SALT_SPIKE)) < self.spike_per_mille as u64
    }

    /// The effective latency multiplier (≥ 1) for spiked loads.
    #[inline]
    pub fn multiplier(&self) -> u64 {
        self.spike_multiplier.max(1)
    }
}

/// Identity of one far load for fault decisions: the lookup's key plus
/// its hop index along the chain. Both are properties of the *workload*,
/// not the schedule, which is what makes fault sets identical across
/// executors, Mux interleavings, and thread counts.
#[inline]
pub fn fault_token(key: u64, hop: u32) -> u64 {
    key ^ (hop as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const SALT_FAIL: u64 = 0xF417_0000_0000_0001;
const SALT_SPIKE: u64 = 0x5B1C_E000_0000_0002;
const SALT_RETRY: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a cheap, well-mixed `u64 -> u64` bijection.
/// Shared with [`crate::CrashPlan`], which draws its crash tick from the
/// same pure-hash discipline.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[inline]
fn per_mille(h: u64) -> u64 {
    h % 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_and_token() {
        let plan = FaultPlan::fail_only(42, 100);
        for key in 0..1000u64 {
            let t = fault_token(key, 3);
            assert_eq!(plan.fails(t), plan.fails(t));
        }
    }

    #[test]
    fn fail_rate_tracks_per_mille() {
        let plan = FaultPlan::fail_only(7, 100); // 10%
        let n = 100_000u64;
        let hits = (0..n).filter(|&k| plan.fails(fault_token(k, 0))).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed fail rate {rate}");
        let never = FaultPlan::fail_only(7, 0);
        assert_eq!((0..1000).filter(|&k| never.fails(fault_token(k, 0))).count(), 0);
        let always = FaultPlan::fail_only(7, 1000);
        assert_eq!((0..1000).filter(|&k| always.fails(fault_token(k, 0))).count(), 1000);
    }

    #[test]
    fn fail_and_spike_hash_independently() {
        let plan = FaultPlan {
            seed: 3,
            fail_per_mille: 500,
            spike_per_mille: 500,
            spike_multiplier: 4,
            degraded_slab: None,
        };
        // If the hashes were correlated, fails ∩ spikes would be ~all or
        // ~none of fails; independent hashes give ~25% of all tokens.
        let n = 10_000u64;
        let both = (0..n)
            .filter(|&k| plan.fails(fault_token(k, 0)) && plan.spikes(fault_token(k, 0)))
            .count();
        let frac = both as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "joint rate {frac} not ~0.25");
    }

    #[test]
    fn tokens_differ_across_hops() {
        assert_ne!(fault_token(5, 0), fault_token(5, 1));
        assert_ne!(fault_token(5, 0), fault_token(6, 0));
    }

    #[test]
    fn reseeding_changes_the_fault_set_but_is_stable() {
        let plan = FaultPlan::fail_only(9, 200);
        let r1 = plan.reseeded(1);
        assert_eq!(plan.reseeded(0), plan);
        assert_eq!(plan.reseeded(1), r1, "reseeding is deterministic");
        assert_ne!(r1.seed, plan.seed);
        // The reseeded plan faults a different subset (statistically).
        let n = 10_000u64;
        let overlap = (0..n)
            .filter(|&k| plan.fails(fault_token(k, 0)) && r1.fails(fault_token(k, 0)))
            .count();
        let base = (0..n).filter(|&k| plan.fails(fault_token(k, 0))).count();
        assert!(overlap < base, "reseeding must not reproduce the same fault set");
    }
}
