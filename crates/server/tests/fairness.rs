//! Multi-tenant fairness: a Zipf-skewed tenant sharing a window with a
//! uniform tenant must not inflate the uniform tenant's `nodes_visited`,
//! reorder its results, or change any of its counters — asserted
//! bit-identically against solo runs, under all four executors, the
//! single-threaded serving scheduler, and the morsel runtime at 1/2/4
//! threads.

use amac::engine::mux::{Mux, Tagged};
use amac::engine::{run, Technique, TuningParams};
use amac_hashtable::HashTable;
use amac_ops::join::{probe, ProbeConfig, ProbeOp};
use amac_ops::multi::{probe_multi_mt_rt, TenantProbe};
use amac_runtime::{MorselConfig, Scheduling};
use amac_server::{Request, ServeConfig, ServeSession};
use amac_workload::Relation;

/// Build-side duplicates (Zipf build keys) so the skewed tenant's hot
/// probes walk long chains — the adversarial neighbour.
fn lab() -> (HashTable, Relation, Relation) {
    let n = 8192usize;
    let domain = (n / 16) as u64;
    // All three relations share one seed, hence one Feistel rank→key
    // permutation: the skewed tenant's hottest probe keys are exactly the
    // build side's longest chains (the `skewed_probe_lab` discipline).
    let build = Relation::zipf(n, domain, 0.5, 0x5EED);
    let ht = HashTable::build_serial(&build);
    let uniform = Relation::zipf(16_000, domain, 0.0, 0x5EED);
    let skewed = Relation::zipf(16_000, domain, 1.0, 0x5EED);
    (ht, uniform, skewed)
}

fn cfg() -> ProbeConfig {
    ProbeConfig { scan_all: true, materialize: false, ..Default::default() }
}

#[test]
fn uniform_tenant_unaffected_under_all_executors() {
    let (ht, uniform, skewed) = lab();
    for technique in Technique::ALL {
        let params = TuningParams::paper_best(technique);
        let mut solo_op = ProbeOp::new(&ht, &cfg(), 0);
        let solo = run(technique, &mut solo_op, &uniform.tuples, params);

        // Shared window: interleave the two tenants quantum-by-quantum.
        let mut mux = Mux::new();
        let lu = mux.add(ProbeOp::new(&ht, &cfg(), 0));
        let lz = mux.add(ProbeOp::new(&ht, &cfg(), 0));
        let mut tagged = Vec::new();
        let q = 128;
        for i in (0..uniform.len().max(skewed.len())).step_by(q) {
            for rel_lane in [(lu, &uniform), (lz, &skewed)] {
                let (lane, rel) = rel_lane;
                for t in rel.tuples.iter().skip(i).take(q) {
                    tagged.push(Tagged::new(lane, *t));
                }
            }
        }
        assert_eq!(tagged.len(), uniform.len() + skewed.len());
        run(technique, &mut mux, &tagged, params);

        let (u_op, u_led) = mux.remove(lu);
        assert_eq!(u_op.matches(), solo_op.matches(), "{technique}: matches");
        assert_eq!(u_op.checksum(), solo_op.checksum(), "{technique}: checksum");
        assert_eq!(u_led.lookups, solo.lookups, "{technique}: lookups");
        assert_eq!(
            u_led.nodes_visited, solo.nodes_visited,
            "{technique}: skewed neighbour inflated the uniform tenant's nodes"
        );
        assert_eq!(u_led.tag_rejects, solo.tag_rejects, "{technique}: tag rejects");
    }
}

#[test]
fn uniform_tenant_unaffected_in_serving_scheduler() {
    let (ht, uniform, skewed) = lab();
    // Materializing config: output order is part of the contract here.
    let mcfg = ProbeConfig { scan_all: false, materialize: true, ..Default::default() };
    let solo = probe(&ht, &uniform, Technique::Amac, &mcfg);

    let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
    let u = srv.submit(Request::Probe { probes: &uniform, cfg: mcfg.clone() }).unwrap();
    srv.submit(Request::Probe { probes: &skewed, cfg: mcfg.clone() }).unwrap();
    let out = srv.finish();
    let ru = out.reports.iter().find(|r| r.qid == u).unwrap();
    assert_eq!(ru.matches, solo.matches);
    assert_eq!(ru.checksum, solo.checksum);
    assert_eq!(ru.out, solo.out, "sharing must not reorder the uniform tenant's output");
    assert_eq!(ru.stats.nodes_visited, solo.stats.nodes_visited);
    assert_eq!(ru.stats.lookups, solo.stats.lookups);
}

#[test]
fn uniform_tenant_unaffected_on_morsel_runtime_1_2_4_threads() {
    let (ht, uniform, skewed) = lab();
    let params = TuningParams::default();
    // Solo reference through the same multi-tenant driver, 1 thread.
    let solo = probe_multi_mt_rt(
        &ht,
        &[TenantProbe::new(&uniform)],
        Technique::Amac,
        &cfg(),
        params,
        256,
        &MorselConfig::with_threads(1),
    )
    .tenants
    .remove(0);

    for threads in [1usize, 2, 4] {
        for scheduling in [Scheduling::StaticChunk, Scheduling::SharedCursor, Scheduling::WorkSteal]
        {
            let rt = MorselConfig { threads, morsel_tuples: 512, scheduling, ..Default::default() };
            let tenants = [TenantProbe::new(&uniform), TenantProbe::new(&skewed)];
            let out = probe_multi_mt_rt(&ht, &tenants, Technique::Amac, &cfg(), params, 256, &rt);
            let got = &out.tenants[0];
            let tag = format!("{threads}t/{scheduling:?}");
            assert_eq!(got.matches, solo.matches, "{tag}: matches");
            assert_eq!(got.checksum, solo.checksum, "{tag}: checksum");
            assert_eq!(got.stats.lookups, solo.stats.lookups, "{tag}: lookups");
            assert_eq!(
                got.stats.nodes_visited, solo.stats.nodes_visited,
                "{tag}: skewed neighbour inflated the uniform tenant's nodes"
            );
            // The skewed tenant *does* do more traversal work per lookup —
            // that is what the fairness ratio reports.
            assert!(
                out.tenants[1].stats.nodes_visited > out.tenants[0].stats.nodes_visited,
                "{tag}: zipf tenant should walk more nodes"
            );
            assert!(out.fairness_nodes_ratio() > 1.0, "{tag}");
        }
    }
}

#[test]
fn far_tier_tenant_does_not_inflate_near_tier_tenant() {
    use amac_tier::{CostModel, TierPolicy, TierSpec};
    let (ht, uniform, skewed) = lab();
    // Near tenant: everything it touches is pinned in DRAM. Far-heavy
    // tenant: long Zipf chains at 8x latency. Materializing config —
    // output order is part of the no-interference contract.
    let near_cfg = ProbeConfig {
        scan_all: false,
        materialize: true,
        tier: Some(TierSpec { model: CostModel::default(), policy: TierPolicy::AllNear }),
        ..Default::default()
    };
    let far_cfg = ProbeConfig {
        scan_all: true,
        materialize: false,
        tier: Some(TierSpec::headers_near(8)),
        ..Default::default()
    };

    // Solo reference for the near tenant.
    let solo = probe(&ht, &uniform, Technique::Amac, &near_cfg);
    assert_eq!(solo.stats.sim_stalls, 0, "a near-only tenant at M = 10 must be stall-free");

    let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
    let u = srv.submit(Request::Probe { probes: &uniform, cfg: near_cfg.clone() }).unwrap();
    let z = srv.submit(Request::Probe { probes: &skewed, cfg: far_cfg.clone() }).unwrap();
    let out = srv.finish();
    let ru = out.reports.iter().find(|r| r.qid == u).unwrap();
    let rz = out.reports.iter().find(|r| r.qid == z).unwrap();

    // The far-heavy neighbour must not inflate the near tenant's stalls
    // (other tenants' stages advance the shared window clock, so sharing
    // only ever *adds* hiding distance), nor touch its results.
    assert_eq!(ru.stats.sim_stalls, solo.stats.sim_stalls, "sharing inflated near-tenant stalls");
    assert_eq!(ru.stats.sim_cycles, solo.stats.sim_cycles, "sharing changed near-tenant work");
    assert_eq!(ru.matches, solo.matches);
    assert_eq!(ru.checksum, solo.checksum);
    assert_eq!(ru.out, solo.out, "sharing must not reorder the near tenant's output");
    assert_eq!(ru.stats.nodes_visited, solo.stats.nodes_visited);
    // The far tenant pays its own latency, visibly.
    assert!(rz.stats.sim_stalls > 0 || rz.stats.sim_cycles > 0, "far tenant charged nothing");

    // Lane-ledger sums must still equal global totals with the new
    // counters.
    let sum_cycles: u64 = out.reports.iter().map(|r| r.stats.sim_cycles).sum();
    let sum_stalls: u64 = out.reports.iter().map(|r| r.stats.sim_stalls).sum();
    assert_eq!(sum_cycles, out.stats.sim_cycles, "per-query sim_cycles must sum to global");
    assert_eq!(sum_stalls, out.stats.sim_stalls, "per-query sim_stalls must sum to global");
}

#[test]
fn solo_vs_shared_serving_occupancy_and_report_consistency() {
    let (ht, uniform, skewed) = lab();
    let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 128, ..Default::default() });
    srv.submit(Request::Probe { probes: &uniform, cfg: cfg() }).unwrap();
    srv.submit(Request::Probe { probes: &skewed, cfg: cfg() }).unwrap();
    let out = srv.finish();
    // Global counters are exactly the per-query sum.
    let sum_lookups: u64 = out.reports.iter().map(|r| r.stats.lookups).sum();
    let sum_nodes: u64 = out.reports.iter().map(|r| r.stats.nodes_visited).sum();
    assert_eq!(sum_lookups, out.stats.lookups);
    assert_eq!(sum_nodes, out.stats.nodes_visited);
    assert!(out.occupancy > 0.0 && out.occupancy <= out.window as f64);
    assert!(out.fairness_nodes_ratio() > 1.0);
    assert_eq!(out.latency.count(), 2);
}
