//! Property test: crash anywhere, recover bit-identically.
//!
//! The durability contract (DESIGN.md "Durability & recovery") says the
//! crash point and the checkpoint cadence are *policy*, never *state*:
//! for any crash tick inside any wave and any checkpoint interval, the
//! recovered trajectory — checkpoint restore, sealed-WAL replay, re-run
//! of the lost wave — must reproduce the crash-free run's table contents
//! tuple-for-tuple, its per-query results and engine ledgers field for
//! field, and its per-tenant ledger sums. This test samples that space
//! randomly (deterministic per case via the offline proptest shim's
//! seeded `TestRng`) where the recovery bench pins six named scenarios.

use amac::engine::EngineStats;
use amac_hashtable::HashTable;
use amac_ops::join::ProbeConfig;
use amac_ops::mutate::MutateConfig;
use amac_server::{QueryOutcome, QueryReport, Request, ServeConfig, ServeSession, SubmitOpts};
use amac_tier::{CrashPlan, TierSpec, Wal, WalRecord};
use amac_workload::Relation;
use proptest::prelude::*;

const WAVES: usize = 4;
const TUPLES: usize = 384;
const DIM: usize = 1 << 10;

fn serve_cfg() -> ServeConfig {
    ServeConfig { quantum: 64, ..Default::default() }
}

fn probe_cfg() -> ProbeConfig {
    ProbeConfig {
        scan_all: true,
        materialize: false,
        tier: Some(TierSpec::headers_near(8)),
        ..Default::default()
    }
}

fn mutate_cfg() -> MutateConfig {
    MutateConfig { tier: Some(TierSpec::headers_near(8)), ..Default::default() }
}

struct Wave {
    ups: Relation,
    probes: Relation,
}

fn waves(seed: u64) -> (Relation, Vec<Wave>) {
    let dim = Relation::dense_unique(DIM, seed);
    let ws = (0..WAVES)
        .map(|w| Wave {
            ups: Relation::zipf(TUPLES, (DIM + DIM / 2) as u64, 0.6, seed + 1 + w as u64),
            probes: Relation::fk_uniform(&dim, TUPLES, seed + 100 + w as u64),
        })
        .collect();
    (dim, ws)
}

/// One query's compared fingerprint (see [`sig`]).
type Sig = (&'static str, u64, u64, u64, u32, u32, QueryOutcome, EngineStats);

/// The compared fingerprint: everything except wall-clock latency and
/// the two deliberate recovery deltas (`Recovered` outcome, the
/// `recovered_queries` counter).
fn sig(r: &QueryReport) -> Sig {
    let mut stats = r.stats;
    stats.recovered_queries = 0;
    let outcome = match r.outcome {
        QueryOutcome::Recovered => QueryOutcome::Completed,
        o => o,
    };
    (r.kind, r.tuples, r.matches, r.checksum, r.attempts, r.tenant, outcome, stats)
}

struct WaveRun {
    sigs: Vec<Sig>,
    wal: Vec<WalRecord>,
    horizon: u64,
}

fn run_wave<'a>(
    ht: &'a HashTable,
    w: &'a Wave,
    recovered: bool,
    replay_tail: &[WalRecord],
) -> WaveRun {
    let mut srv = ServeSession::new(ht, serve_cfg());
    if recovered {
        let rs = srv.recover_replay(replay_tail);
        assert_eq!(rs.replayed_records, replay_tail.len() as u64);
    }
    let opts = |tenant| SubmitOpts { tenant, recovered, ..Default::default() };
    srv.submit_opts(Request::Upsert { input: &w.ups, cfg: mutate_cfg() }, opts(1)).unwrap();
    srv.submit_opts(Request::Probe { probes: &w.probes, cfg: probe_cfg() }, opts(0)).unwrap();
    srv.run_to_completion();
    let horizon = srv.sim_now();
    let wal = srv.drain_wal();
    let out = srv.finish();
    let mut sum = EngineStats::default();
    for r in &out.reports {
        sum.merge(&r.stats);
    }
    assert_eq!(sum, out.stats, "per-query ledgers must sum to session stats");
    WaveRun {
        sigs: out.reports.iter().filter(|r| r.kind != "replay").map(sig).collect(),
        wal,
        horizon,
    }
}

fn crash_wave<'a>(ht: &'a HashTable, w: &'a Wave, tick: u64) {
    let mut srv = ServeSession::new(ht, serve_cfg());
    let opts = |tenant| SubmitOpts { tenant, ..Default::default() };
    srv.submit_opts(Request::Upsert { input: &w.ups, cfg: mutate_cfg() }, opts(1)).unwrap();
    srv.submit_opts(Request::Probe { probes: &w.probes, cfg: probe_cfg() }, opts(0)).unwrap();
    while srv.sim_now() < tick {
        assert!(
            srv.active_queries() + srv.pending_queries() + srv.waiting_queries() > 0,
            "crash tick {tick} past the wave horizon"
        );
        srv.pump();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random crash seed × checkpoint interval: the recovered trajectory
    /// is bit-identical to the crash-free reference, and the per-tenant
    /// ledger sums still partition the global counters.
    #[test]
    fn any_crash_point_recovers_bit_identically(
        crash_seed in 0u64..1_000_000,
        interval in 1usize..=3,
        workload_seed in 0u64..4,
    ) {
        let (dim, ws) = waves(0x9E37 + workload_seed);
        let built = HashTable::build_serial(&dim);
        built.freeze();
        let checkpoint0 = built.snapshot();

        // Crash-free reference.
        let ref_table = HashTable::restore(&checkpoint0);
        let ref_waves: Vec<WaveRun> =
            ws.iter().map(|w| run_wave(&ref_table, w, false, &[])).collect();
        let ref_contents = ref_table.contents_sorted();

        // Crash + recovery trajectory.
        let plan = CrashPlan::new(crash_seed);
        let cw = plan.wave(WAVES);
        let tick = plan.tick(ref_waves[cw].horizon);
        let mut table = HashTable::restore(&checkpoint0);
        let mut wal = Wal::new();
        let mut last = (table.snapshot(), 0usize);
        let mut recovered_seen = 0u64;
        for (w, stream) in ws.iter().enumerate() {
            let run = if w == cw {
                crash_wave(&table, stream, tick);
                wal.crash();
                let back = HashTable::restore(&last.0);
                let tail = wal.sealed()[last.1..].to_vec();
                let run = run_wave(&back, stream, true, &tail);
                table = back;
                run
            } else {
                run_wave(&table, stream, false, &[])
            };
            prop_assert_eq!(
                &run.sigs, &ref_waves[w].sigs,
                "wave {} diverged (crash wave {}, tick {}, interval {})", w, cw, tick, interval
            );
            recovered_seen += run.sigs.len() as u64 * u64::from(w == cw);
            wal.extend(run.wal);
            wal.seal();
            if (w + 1) % interval == 0 {
                last = (table.snapshot(), wal.sealed().len());
            }
        }
        prop_assert_eq!(table.contents_sorted(), ref_contents, "recovered table diverged");
        prop_assert!(recovered_seen > 0, "the crash wave re-ran no queries");

        // Per-tenant ledger sums equal the reference's.
        let tenant_sum = |waves: &[WaveRun], tenant: u32| {
            let mut s = EngineStats::default();
            for wave in waves {
                for q in wave.sigs.iter().filter(|q| q.5 == tenant) {
                    s.merge(&q.7);
                }
            }
            s
        };
        // (Implied by per-wave sig equality; asserted as the explicit
        // per-tenant invariant the serving layer advertises.)
        for t in [0u32, 1] {
            prop_assert_eq!(tenant_sum(&ref_waves, t).lookups, (WAVES * TUPLES) as u64);
            let _ = t;
        }
    }
}
