//! Chaos test for the per-query flight recorder.
//!
//! With [`ServeConfig::flight_recorder`] set, every attempt runs with a
//! bounded last-K trace ring on its lane op. The retention policy under
//! churn: only queries that end in [`QueryOutcome::DeadlineExceeded`] or
//! [`QueryOutcome::FailedAfterRetries`] surface their ring in
//! [`QueryReport::flight`] — healthy tenants sharing the same window
//! retain nothing, so steady-state serving pays only the ring's bounded
//! buffer. A deadline victim's tail provably ends with the
//! [`EventKind::Deadline`] instant, because the multiplexer
//! short-circuits cancelled lanes (the inner op never steps — and so
//! never records — again).

use amac_ops::join::ProbeConfig;
use amac_server::{QueryOutcome, Request, ServeConfig, ServeSession, SubmitOpts};
use amac_tier::FaultPlan;
use amac_trace::EventKind;
use amac_workload::Relation;

/// Over-occupied catalog (8 keys per bucket → multi-hop chains) so that
/// rings fill with real load events and far faults have loads to poison.
fn chained_catalog(n: usize) -> (Relation, amac_hashtable::HashTable) {
    let r = Relation::dense_unique(n, 0xC4A1);
    let ht = amac_hashtable::HashTable::with_buckets(n / 8);
    {
        let mut h = ht.build_handle();
        for t in &r.tuples {
            h.insert(t.key, t.payload);
        }
    }
    (r, ht)
}

const RING: usize = 32;

/// One mixed session: a doomed deadline victim (tenant 7), a terminally
/// faulted query (tenant 3, no retry budget), and two healthy tenants
/// interleaved in the same window. Returns the finished output.
fn mixed_session(
    ht: &amac_hashtable::HashTable,
    big: &Relation,
    small: &Relation,
    flight_recorder: usize,
) -> amac_server::ServeOutput {
    let pcfg = ProbeConfig { scan_all: true, materialize: false, ..Default::default() };
    let mut srv = ServeSession::new(
        ht,
        ServeConfig { quantum: 64, max_retries: 0, flight_recorder, ..Default::default() },
    );
    // Tenant 7: far too much work for a 1-tick deadline.
    srv.submit_opts(
        Request::Probe { probes: big, cfg: pcfg.clone() },
        SubmitOpts { tenant: 7, deadline_ticks: Some(1), ..Default::default() },
    )
    .unwrap();
    // Tenant 3: every chain hop faults and there is no retry budget.
    srv.submit_opts(
        Request::Probe {
            probes: small,
            cfg: ProbeConfig { fault: Some(FaultPlan::fail_only(0xDEAD, 1000)), ..pcfg.clone() },
        },
        SubmitOpts { tenant: 3, ..Default::default() },
    )
    .unwrap();
    // Tenants 1 and 2: healthy neighbors sharing the window.
    for tenant in [1u32, 2] {
        srv.submit_opts(
            Request::Probe { probes: small, cfg: pcfg.clone() },
            SubmitOpts { tenant, ..Default::default() },
        )
        .unwrap();
    }
    srv.finish()
}

#[test]
fn failing_queries_surface_their_ring_and_healthy_tenants_retain_nothing() {
    let (dim, ht) = chained_catalog(1 << 12);
    let big = Relation::fk_uniform(&dim, 50_000, 0x81);
    let small = Relation::fk_uniform(&dim, 1_000, 0x82);
    let out = mixed_session(&ht, &big, &small, RING);
    assert_eq!(out.reports.len(), 4);

    let victim = out.reports.iter().find(|r| r.tenant == 7).unwrap();
    assert_eq!(victim.outcome, QueryOutcome::DeadlineExceeded);
    assert!(!victim.flight.is_empty(), "deadline victim must carry its flight ring");
    assert!(victim.flight.len() <= RING, "ring must stay bounded");
    // The tail ends at the deadline: the mux short-circuits the cancelled
    // lane, so nothing is recorded after the Deadline instant.
    let last = victim.flight.last().unwrap();
    assert!(
        matches!(last.kind, EventKind::Deadline { qid } if qid == victim.qid.0),
        "victim's final event must be its own deadline tick, got {last:?}"
    );
    // Every retained event is stamped with the victim's tenant.
    assert!(victim.flight.iter().all(|e| e.tenant == 7), "ring events carry the tenant stamp");

    let failed = out.reports.iter().find(|r| r.tenant == 3).unwrap();
    assert_eq!(failed.outcome, QueryOutcome::FailedAfterRetries);
    assert!(!failed.flight.is_empty(), "terminal failure must carry its flight ring");
    assert!(
        failed.flight.iter().any(|e| matches!(e.kind, EventKind::Fault { .. })),
        "the failing attempt's ring must contain the fault"
    );

    // Healthy tenants sharing the same window retain nothing.
    for tenant in [1u16, 2] {
        let healthy = out.reports.iter().find(|r| r.tenant == u32::from(tenant)).unwrap();
        assert_eq!(healthy.outcome, QueryOutcome::Completed, "tenant {tenant}");
        assert!(
            healthy.flight.is_empty(),
            "tenant {tenant}: healthy queries must not retain a flight ring"
        );
    }
}

#[test]
fn flight_rings_are_deterministic_and_off_by_default() {
    let (dim, ht) = chained_catalog(1 << 12);
    let big = Relation::fk_uniform(&dim, 50_000, 0x81);
    let small = Relation::fk_uniform(&dim, 1_000, 0x82);

    // Same session twice: byte-for-byte identical rings.
    let a = mixed_session(&ht, &big, &small, RING);
    let b = mixed_session(&ht, &big, &small, RING);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.qid, rb.qid);
        assert_eq!(ra.flight, rb.flight, "{}: flight ring must be deterministic", ra.qid);
    }

    // Recorder off (the default): identical outcomes and results, and
    // even failing queries retain nothing — the recorder is pay-for-use.
    let off = mixed_session(&ht, &big, &small, 0);
    for (ra, ro) in a.reports.iter().zip(&off.reports) {
        assert_eq!(ra.qid, ro.qid);
        assert_eq!(ra.outcome, ro.outcome, "{}: recorder must not change outcomes", ra.qid);
        assert_eq!(ra.matches, ro.matches, "{}", ra.qid);
        assert_eq!(ra.checksum, ro.checksum, "{}", ra.qid);
        assert_eq!(ra.stats, ro.stats, "{}: recorder must not perturb the ledger", ra.qid);
        assert!(ro.flight.is_empty(), "{}: default config retains nothing", ra.qid);
    }
    assert_eq!(a.stats, off.stats, "global ledger must be identical with the recorder on or off");
}
