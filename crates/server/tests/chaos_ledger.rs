//! Property test: ledger conservation under random interleavings.
//!
//! The serving layer promises *exact* per-query accounting no matter how
//! service ends: every report's [`EngineStats`] is the query's own lane
//! ledger (plus aborted attempts), so grouping reports by tenant and
//! summing must reproduce the session's global counters — including the
//! work done by queries that were cancelled mid-flight, missed their
//! deadline, retried after faults, or were degraded/shed by an open
//! circuit breaker. This test drives random submit/cancel/pump
//! interleavings (deterministic per case via the offline proptest shim's
//! seeded `TestRng`) and checks that conservation law on every one.

use std::collections::{BTreeMap, BTreeSet};

use amac::engine::EngineStats;
use amac_hashtable::{AggTable, HashTable};
use amac_ops::groupby::GroupByConfig;
use amac_ops::join::ProbeConfig;
use amac_server::{QueryId, QueryOutcome, Request, ServeConfig, ServeSession, SubmitOpts};
use amac_tier::FaultPlan;
use amac_workload::Relation;
use proptest::prelude::*;

/// Over-occupied catalog (8 keys per bucket → multi-hop chains) so that
/// faulted probes have plenty of far loads to poison.
fn chained_catalog(n: usize) -> (Relation, HashTable) {
    let r = Relation::dense_unique(n, 0xC4A1);
    let ht = HashTable::with_buckets(n / 8);
    {
        let mut h = ht.build_handle();
        for t in &r.tuples {
            h.insert(t.key, t.payload);
        }
    }
    (r, ht)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random submit/cancel/pump interleavings: per-tenant stats deltas
    /// sum to the global totals, one report per admitted query, and
    /// outcome counts partition the report set.
    #[test]
    fn per_tenant_ledgers_sum_to_global_under_random_interleavings(
        actions in prop::collection::vec(
            // (what, stream pick, tenant, weight-1, tight deadline?, faulted?)
            (0u8..10, 0usize..6, 0u32..4, 0u32..3, prop::bool::ANY, prop::bool::ANY),
            12..28,
        ),
    ) {
        let (dim, ht) = chained_catalog(512);
        // Probe streams of varying sizes; groups for the group-by mix.
        let streams: Vec<Relation> = (0..6)
            .map(|i| Relation::fk_uniform(&dim, 64 << (i % 3), 0x9000 + i as u64))
            .collect();
        let gb_in = amac_workload::GroupByInput::zipf(32, 512, 0.8, 0x77).relation;
        let tables: Vec<AggTable> = (0..actions.len()).map(|_| AggTable::for_groups(32)).collect();

        let cfg = ServeConfig {
            max_active: 3,
            max_pending: 2,
            quantum: 48,
            max_retries: 1,
            backoff_base: 8,
            breaker_threshold: 2,
            ..Default::default()
        };
        let mut srv = ServeSession::new(&ht, cfg);
        let mut admitted: Vec<QueryId> = Vec::new();
        let mut rejected = 0u64;

        for (i, &(what, pick, tenant, wm1, tight, faulted)) in actions.iter().enumerate() {
            match what {
                // Submit (the bulk of the distribution): probes with an
                // optional fault plan + tight deadline, or a group-by.
                0..=5 => {
                    let opts = SubmitOpts {
                        weight: 1 + wm1,
                        tenant,
                        deadline_ticks: if tight { Some(1) } else { None },
                        recovered: false,
                    };
                    let req = if what == 5 {
                        Request::GroupBy {
                            input: &gb_in,
                            table: &tables[i],
                            cfg: GroupByConfig::default(),
                        }
                    } else {
                        let fault = faulted.then(|| FaultPlan::fail_only(0xFA00 + i as u64, 30));
                        Request::Probe {
                            probes: &streams[pick],
                            cfg: ProbeConfig { scan_all: true, fault, ..Default::default() },
                        }
                    };
                    match srv.submit_opts(req, opts) {
                        Ok(qid) => admitted.push(qid),
                        Err(_) => rejected += 1,
                    }
                }
                // Pump a burst: advances deadlines, retries, breakers.
                6 | 7 => {
                    for _ in 0..(1 + pick * 3) {
                        srv.pump();
                    }
                }
                // Cancel a previously admitted query (idempotent: may
                // already have completed — `cancel` returns false then).
                8 => {
                    if let Some(&qid) = admitted.get(pick % admitted.len().max(1)) {
                        srv.cancel(qid);
                    }
                }
                // A budgeted run slice (may or may not finish everything).
                _ => {
                    let _ = srv.run_with_budget(4 + pick);
                }
            }
        }
        let out = srv.finish();

        // One report per admitted query — none lost, none duplicated.
        let qids: BTreeSet<QueryId> = out.reports.iter().map(|r| r.qid).collect();
        prop_assert_eq!(qids.len(), out.reports.len(), "duplicate reports");
        prop_assert_eq!(&qids, &admitted.iter().copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(out.rejected, rejected);

        // Outcome counts partition the report set.
        let outcomes = [
            QueryOutcome::Completed,
            QueryOutcome::DeadlineExceeded,
            QueryOutcome::FailedAfterRetries,
            QueryOutcome::Cancelled,
            QueryOutcome::Shed,
        ];
        let total: u64 = outcomes.iter().map(|&o| out.count(o)).sum();
        prop_assert_eq!(total, out.reports.len() as u64);

        // The conservation law: group reports by tenant, sum each group,
        // and the tenant deltas must sum to the global counters —
        // cancelled, deadline-exceeded, retried and shed queries included.
        let mut per_tenant: BTreeMap<u32, EngineStats> = BTreeMap::new();
        for r in &out.reports {
            per_tenant.entry(r.tenant).or_default().merge(&r.stats);
            // Non-completed queries surface no results, but their ledgers
            // stay exact: nothing retired beyond what was fed.
            if r.outcome != QueryOutcome::Completed {
                prop_assert_eq!(r.matches, 0);
                prop_assert!(r.out.is_empty());
            }
            prop_assert!(
                r.stats.lookups >= r.stats.cancelled_lookups,
                "lane {} retired fewer lookups than it cancelled",
                r.qid,
            );
        }
        let mut sum = EngineStats::default();
        for s in per_tenant.values() {
            sum.merge(s);
        }
        prop_assert_eq!(sum, out.stats, "per-tenant ledger deltas != global stats");
    }
}
