//! # amac_server — cross-query AMAC serving layer
//!
//! Everything below `amac_server` runs **one query at a time**: a probe
//! stream, one op, one in-flight window. A serving system sees something
//! else entirely — many concurrent client sessions, each submitting
//! probe / group-by / pipeline queries of wildly different sizes. Giving
//! each its own window wastes the machine twice: a small query cannot
//! fill `M` slots (its tail runs at memory latency), and a big query
//! monopolizes the engine while everyone else queues.
//!
//! The paper's own insight closes the gap: the in-flight window hides
//! memory latency *regardless of where the lookups come from* (§3 — the
//! window entries are independent state machines; the AMAU follow-up
//! work generalizes exactly this to many request streams sharing one
//! asynchronous access engine). So this crate batches concurrent
//! sessions into **shared** windows:
//!
//! * [`ServeSession`] — admission control (bounded active set, bounded
//!   pending queue, explicit [`Backpressure`]), deficit-round-robin
//!   interleaving across active queries, one persistent
//!   [`amac_runtime::AmacSession`] whose window carries every query's
//!   lookups at once;
//! * [`Request`] / [`QueryReport`] — per-query submission and result
//!   routing: results, materialized outputs and *exact* per-query
//!   [`amac::engine::EngineStats`] (via `amac::engine::mux`'s per-lane
//!   ledgers), plus submit-to-completion latency;
//! * multi-threaded serving runs through `amac_ops::multi`, where every
//!   worker's window is shared the same way.
//!
//! Results are bit-identical to solo runs by construction — sharing the
//! window reschedules stages, it never changes what a query computes —
//! and `crates/server/tests/fairness.rs` plus `bench/bin/serve.rs` hold
//! that line (a Zipf-skewed tenant must not inflate a uniform tenant's
//! `nodes_visited`, reorder its results, or change its counters).
//!
//! ## Quickstart
//!
//! (Mirrored in the repository `README.md`; `bench/bin/serve.rs` is the
//! load-generator version with Poisson arrivals and tenant mixes.)
//!
//! ```
//! use amac_server::{Request, ServeConfig, ServeSession};
//! use amac_ops::join::ProbeConfig;
//! use amac_hashtable::HashTable;
//! use amac_workload::Relation;
//!
//! // Shared catalog: one dimension table every query probes.
//! let dim = Relation::dense_unique(1 << 10, 0xD1);
//! let ht = HashTable::build_serial(&dim);
//!
//! // Two concurrent client sessions: uniform and Zipf-skewed.
//! let uniform = Relation::fk_uniform(&dim, 4096, 0x01);
//! let skewed = Relation::zipf(4096, 1 << 10, 1.0, 0x02);
//!
//! let mut srv = ServeSession::new(&ht, ServeConfig::default());
//! let a = srv.submit(Request::Probe { probes: &uniform, cfg: ProbeConfig::default() }).unwrap();
//! let b = srv.submit(Request::Probe { probes: &skewed, cfg: ProbeConfig::default() }).unwrap();
//!
//! let out = srv.finish(); // drives both queries through ONE shared window
//! assert_eq!(out.reports.len(), 2);
//! for r in &out.reports {
//!     // Per-query accounting is exact: every submitted tuple completed.
//!     assert_eq!(r.stats.lookups, r.tuples);
//! }
//! assert!(out.reports.iter().any(|r| r.qid == a));
//! assert!(out.reports.iter().any(|r| r.qid == b));
//! ```

#![warn(missing_docs)]

mod request;
mod session;
mod shard;
mod tenant;

pub use request::{
    Backpressure, BreakerMode, QueryId, QueryOutcome, QueryReport, Request, Stalled, SubmitOpts,
};
pub use session::{ServeConfig, ServeOutput, ServeSession};
pub use shard::{ShardedServe, ShardedServeOutput};
pub use tenant::{TenantOp, TenantState};
