//! Sharded serving: one [`ServeSession`] — and therefore one `Mux` lane
//! group, one shared in-flight window — **per shard**, with
//! consistent-hash tenant→shard routing in front.
//!
//! A tenant's home shard is a pure function of the tenant id
//! ([`amac_shard::ShardRouter::shard_of_tenant`]), so any frontend
//! replica routes identically with no coordination. Every query a tenant
//! submits runs wholly on its home shard's session: admission, DRR
//! quanta, deadlines, retries and circuit breakers all stay per-shard,
//! which is what keeps one tenant's overload from spilling into another
//! shard's window.
//!
//! Accounting is conservative by construction and *asserted* in the gate
//! (`bench/bin/shard.rs`): each shard session's ledger equals the sum of
//! its per-query reports (the existing `Mux` lane invariant), and the
//! global ledger equals the sum of the shard ledgers — no counter is
//! lost or double-counted crossing the shard boundary.

use amac::engine::EngineStats;
use amac_shard::{ShardRouter, ShardedTable};
use amac_tier::WalRecord;

use crate::request::{Backpressure, QueryId, QueryOutcome, QueryReport, Request, SubmitOpts};
use crate::session::{ServeConfig, ServeOutput, ServeSession};

/// A fleet of per-shard serving sessions behind one tenant router.
pub struct ShardedServe<'a> {
    router: ShardRouter,
    sessions: Vec<ServeSession<'a>>,
}

impl<'a> ShardedServe<'a> {
    /// One serving session per shard of `table`, all with the same
    /// config.
    pub fn new(table: &'a ShardedTable, cfg: ServeConfig) -> Self {
        let sessions = table.shards().iter().map(|s| ServeSession::new(s, cfg.clone())).collect();
        ShardedServe { router: table.router().clone(), sessions }
    }

    /// Number of shards (= sessions = lane groups).
    pub fn n_shards(&self) -> usize {
        self.sessions.len()
    }

    /// The tenant's home shard — where every query it submits runs.
    pub fn shard_of_tenant(&self, tenant: u32) -> usize {
        self.router.shard_of_tenant(tenant)
    }

    /// Submit a query; it routes to the home shard of `opts.tenant`.
    /// Returns `(shard, qid)` — query ids are unique per shard, not
    /// globally.
    pub fn submit(
        &mut self,
        req: Request<'a>,
        opts: SubmitOpts,
    ) -> Result<(usize, QueryId), Backpressure> {
        let s = self.shard_of_tenant(opts.tenant);
        self.sessions[s].submit_opts(req, opts).map(|qid| (s, qid))
    }

    /// One scheduling round on every shard session (lock-step progress,
    /// the moral equivalent of one tick on each core). Returns queries
    /// retired across all shards.
    pub fn pump(&mut self) -> usize {
        self.sessions.iter_mut().map(|s| s.pump()).sum()
    }

    /// Borrow one shard's session (inspection, cancellation, replay).
    pub fn session(&self, s: usize) -> &ServeSession<'a> {
        &self.sessions[s]
    }

    /// Mutably borrow one shard's session.
    pub fn session_mut(&mut self, s: usize) -> &mut ServeSession<'a> {
        &mut self.sessions[s]
    }

    /// Per-shard WAL drains, index = shard (each shard's durability is
    /// its own: a shard's records never mix into another's log).
    pub fn drain_wals(&mut self) -> Vec<Vec<WalRecord>> {
        self.sessions.iter_mut().map(|s| s.drain_wal()).collect()
    }

    /// Drive every shard to completion and collect per-shard outputs
    /// plus the merged global ledger.
    pub fn finish(self) -> ShardedServeOutput {
        let shards: Vec<ServeOutput> = self.sessions.into_iter().map(|s| s.finish()).collect();
        let mut stats = EngineStats::default();
        for s in &shards {
            stats.merge(&s.stats);
        }
        ShardedServeOutput { shards, stats }
    }
}

/// Everything a sharded serve run produced: one [`ServeOutput`] per
/// shard plus the merged ledger.
#[derive(Debug, Default)]
pub struct ShardedServeOutput {
    /// Per-shard session outputs, index = shard.
    pub shards: Vec<ServeOutput>,
    /// Global ledger: the sum of every shard's `stats`.
    pub stats: EngineStats,
}

impl ShardedServeOutput {
    /// Every query report across every shard.
    pub fn reports(&self) -> impl Iterator<Item = &QueryReport> {
        self.shards.iter().flat_map(|s| s.reports.iter())
    }

    /// Reports with the given outcome, across shards.
    pub fn count(&self, outcome: QueryOutcome) -> u64 {
        self.shards.iter().map(|s| s.count(outcome)).sum()
    }

    /// Queries refused at submission, across shards.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Fairness across **all** shards' queries (max/mean of
    /// `nodes_visited`, the single definition in
    /// `amac_ops::multi::fairness_nodes_ratio`): sharding must not let
    /// one shard's tenants pay more traversal work per query than
    /// another's.
    pub fn fairness_nodes_ratio(&self) -> f64 {
        amac_ops::multi::fairness_nodes_ratio(self.reports().map(|r| r.stats.nodes_visited))
    }

    /// Ledger conservation check: per shard, the session ledger must
    /// equal the sum of its per-query reports; globally, [`stats`](Self::stats)
    /// must equal the sum of the shard ledgers. Returns the number of
    /// shards violating either (0 = conserved, the gated invariant).
    pub fn ledger_violations(&self) -> u64 {
        let mut violations = 0u64;
        let mut total = EngineStats::default();
        for s in &self.shards {
            let mut from_reports = EngineStats::default();
            for r in &s.reports {
                from_reports.merge(&r.stats);
            }
            if from_reports != s.stats {
                violations += 1;
            }
            total.merge(&s.stats);
        }
        if total != self.stats {
            violations += 1;
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac::engine::Technique;
    use amac_hashtable::HashTable;
    use amac_ops::join::{probe, ProbeConfig};
    use amac_shard::ShardRouter;
    use amac_workload::{Relation, Tuple};

    /// Per-tenant probe stream drawn from the tenant's home shard's keys
    /// (the tenant-sharded data model: a tenant's rows live on its home
    /// shard).
    fn tenant_probes(
        build: &Relation,
        router: &ShardRouter,
        shard: usize,
        n: usize,
        seed: u64,
    ) -> Relation {
        let local: Vec<Tuple> =
            build.tuples.iter().copied().filter(|t| router.shard_of_key(t.key) == shard).collect();
        assert!(!local.is_empty(), "shard {shard} owns no build keys");
        let tuples = (0..n).map(|i| local[(i as u64 * seed) as usize % local.len()]).collect();
        Relation::from_tuples(tuples)
    }

    #[test]
    fn tenants_route_stably_and_results_match_solo() {
        let build = Relation::dense_unique(1 << 10, 7);
        let solo = HashTable::build_serial(&build);
        let st = ShardedTable::build(&build, ShardRouter::new(6, 4));
        let router = st.router().clone();

        let tenants: Vec<u32> = (0..8).collect();
        let streams: Vec<(u32, Relation)> = tenants
            .iter()
            .map(|&t| {
                let s = router.shard_of_tenant(t);
                (t, tenant_probes(&build, &router, s, 512, 2 * u64::from(t) + 3))
            })
            .collect();

        let mut srv = ShardedServe::new(&st, ServeConfig::default());
        for (t, probes) in &streams {
            let opts = SubmitOpts { tenant: *t, ..Default::default() };
            let (s, _) =
                srv.submit(Request::Probe { probes, cfg: ProbeConfig::default() }, opts).unwrap();
            assert_eq!(s, srv.shard_of_tenant(*t), "router must agree with placement");
        }
        let out = srv.finish();

        assert_eq!(out.reports().count(), streams.len());
        assert_eq!(out.ledger_violations(), 0, "Σ shard ledgers must equal the global ledger");
        for (t, probes) in &streams {
            let expect = probe(&solo, probes, Technique::Amac, &ProbeConfig::default());
            let report =
                out.reports().find(|r| r.tenant == *t).expect("every tenant's query completed");
            assert_eq!(report.outcome, QueryOutcome::Completed);
            assert_eq!(report.matches, expect.matches, "tenant {t}");
            assert_eq!(report.checksum, expect.checksum, "tenant {t}");
            assert_eq!(report.out, expect.out, "tenant {t}");
        }
        let fairness = out.fairness_nodes_ratio();
        assert!((1.0..2.0).contains(&fairness), "uniform tenants, fairness {fairness}");
    }

    #[test]
    fn upserts_stay_on_their_home_shard_with_private_wals() {
        let build = Relation::dense_unique(1 << 9, 11);
        let st = ShardedTable::build(&build, ShardRouter::new(6, 4));
        let router = st.router().clone();

        let tenant = 5u32;
        let home = router.shard_of_tenant(tenant);
        let ups = tenant_probes(&build, &router, home, 256, 13);
        let mut srv = ShardedServe::new(&st, ServeConfig::default());
        let opts = SubmitOpts { tenant, ..Default::default() };
        srv.submit(Request::Upsert { input: &ups, cfg: Default::default() }, opts).unwrap();
        srv.session_mut(home).run_to_completion();
        let wals = srv.drain_wals();
        for (s, wal) in wals.iter().enumerate() {
            if s == home {
                assert_eq!(wal.len(), ups.len(), "home shard logs every applied upsert");
                assert!(wal.iter().all(|r| router.shard_of_key(r.key()) == home));
            } else {
                assert!(wal.is_empty(), "shard {s} must not log another shard's writes");
            }
        }
        assert_eq!(srv.finish().ledger_violations(), 0);
    }
}
