//! The serving layer's client-facing vocabulary: requests, query ids,
//! per-query reports, and the backpressure error.

use amac::engine::EngineStats;
use amac_hashtable::AggTable;
use amac_ops::groupby::GroupByConfig;
use amac_ops::join::ProbeConfig;
use amac_ops::mutate::MutateConfig;
use amac_ops::pipeline::PipelineConfig;
use amac_workload::Relation;

/// Identifies one submitted query for the lifetime of a serving session
/// (monotonically increasing, never reused — unlike the window *lane*,
/// which is recycled as queries come and go).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl core::fmt::Display for QueryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One client request. Probe-shaped requests run against the session's
/// shared catalog table; aggregate-producing requests bring their own
/// output [`AggTable`] (result routing: every query's aggregates land in
/// *its* table, bit-identical to a solo run).
///
/// `Clone` is cheap (the relation/table fields are borrows) and is what
/// lets the serving layer re-run a faulted attempt from scratch: a retry
/// clones the original request and reseeds its fault plan.
#[derive(Clone)]
pub enum Request<'a> {
    /// Probe the catalog table with `probes` (hash-join probe semantics
    /// per `cfg`: early-exit or scan-all, optional materialization).
    Probe {
        /// The query's probe stream.
        probes: &'a Relation,
        /// Probe semantics.
        cfg: ProbeConfig,
    },
    /// Aggregate `input` into the query's own `table`.
    GroupBy {
        /// Tuples to aggregate.
        input: &'a Relation,
        /// The query's private output table.
        table: &'a AggTable,
        /// Group-by tuning.
        cfg: GroupByConfig,
    },
    /// Fused probe → filter → group-by: probe the catalog table with
    /// `fact`, filter on the probe payload, aggregate survivors into the
    /// query's own `table` — the whole chain in the shared window.
    Pipeline {
        /// The query's fact stream.
        fact: &'a Relation,
        /// The query's private output table.
        table: &'a AggTable,
        /// Pipeline tuning (filter selectivity, hints).
        cfg: PipelineConfig,
    },
    /// Mutate the **shared** catalog table latch-free (upsert / insert /
    /// delete per `cfg.kind`), interleaved in the same window as reads.
    /// Applied mutations append [`amac_tier::WalRecord`]s which the
    /// session collects ([`crate::ServeSession::drain_wal`]) for
    /// durability. Never retried: mutations are not idempotent — a fault
    /// fails the query terminally, with the already-applied prefix
    /// logged.
    Upsert {
        /// The mutation stream (key + payload/delta).
        input: &'a Relation,
        /// Mutation tuning (kind, WAL on/off, tier, faults).
        cfg: MutateConfig,
    },
}

impl Request<'_> {
    /// The tuples this request will feed through the window.
    pub fn input_len(&self) -> usize {
        match self {
            Request::Probe { probes, .. } => probes.len(),
            Request::GroupBy { input, .. } => input.len(),
            Request::Pipeline { fact, .. } => fact.len(),
            Request::Upsert { input, .. } => input.len(),
        }
    }
}

/// Per-query submission options beyond the request itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Deficit-round-robin weight (2 = twice the per-round tuple share).
    /// Clamped to ≥ 1.
    pub weight: u32,
    /// Tenant id for circuit-breaker accounting: consecutive final
    /// failures are tracked per tenant, and an open breaker sheds or
    /// degrades that tenant's *new* queries only.
    pub tenant: u32,
    /// Deadline in simulated ticks, measured from the query's activation
    /// (admission into the window). `None` = no deadline. A query still
    /// running past its deadline is cooperatively cancelled and reported
    /// as [`QueryOutcome::DeadlineExceeded`]; retry backoff counts
    /// against the deadline because backoff is charged to the sim clock.
    pub deadline_ticks: Option<u64>,
    /// This submission re-runs a query lost in a crash (recovery path):
    /// a successful completion reports [`QueryOutcome::Recovered`] and
    /// counts into `EngineStats::recovered_queries`. Results are still
    /// bit-identical to the crash-free run — the flag changes accounting
    /// only.
    pub recovered: bool,
}

impl Default for SubmitOpts {
    fn default() -> Self {
        SubmitOpts { weight: 1, tenant: 0, deadline_ticks: None, recovered: false }
    }
}

/// Admission refused: both the active set and the pending queue are at
/// capacity. Open-loop clients shed the query (and count it); closed-loop
/// clients retry after draining some work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Queries currently sharing the window.
    pub active: usize,
    /// Queries queued for admission.
    pub pending: usize,
    /// The pending-queue bound that was hit.
    pub max_pending: usize,
    /// Closed-loop retry hint: after this many
    /// [`pump`](crate::ServeSession::pump) calls the smallest active
    /// query is expected to have completed, freeing a lane. Deterministic
    /// (derived from remaining input and quanta, not time); always ≥ 1.
    pub retry_after_pumps: usize,
}

impl core::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "serving session at capacity: {} active, {}/{} pending",
            self.active, self.pending, self.max_pending
        )
    }
}

impl std::error::Error for Backpressure {}

/// A budgeted run gave up: [`run_with_budget`](crate::ServeSession::run_with_budget)
/// exhausted its pump budget with queries still unfinished. The session
/// is left intact — the caller can inspect it, cancel the wedged query,
/// or grant more budget and resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stalled {
    /// Pumps executed before giving up.
    pub pumps: usize,
    /// Lookups still in flight in the shared window.
    pub in_flight: usize,
    /// Queries still active.
    pub active: usize,
}

impl core::fmt::Display for Stalled {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "serving session stalled after {} pumps: {} lookups in flight, {} queries active",
            self.pumps, self.in_flight, self.active
        )
    }
}

impl std::error::Error for Stalled {}

/// What an open circuit breaker does with a tripped tenant's new queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BreakerMode {
    /// Refuse outright: the query completes immediately with
    /// [`QueryOutcome::Shed`] and does no work.
    Shed,
    /// Serve a cheaper plan: probes step one rung down the tier
    /// degradation ladder (`amac_tier::TierPolicy::degrade`), fused
    /// pipelines fall back to the fault-free two-phase plan. Queries
    /// that cannot degrade further are shed.
    #[default]
    Degrade,
}

/// How one query's service ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QueryOutcome {
    /// All lookups retired normally; results are exact and bit-identical
    /// to a fault-free solo run.
    #[default]
    Completed,
    /// The deadline passed before the query finished; it was
    /// cooperatively cancelled and reports no results.
    DeadlineExceeded,
    /// Every attempt (1 + `max_retries` for retryable queries, the single
    /// attempt for non-retryable ones) hit a far-tier fault.
    FailedAfterRetries,
    /// The client cancelled it ([`crate::ServeSession::cancel`]).
    Cancelled,
    /// An open circuit breaker refused it before any work ran.
    Shed,
    /// Completed normally, but as a crash-recovery re-run
    /// ([`SubmitOpts::recovered`]) — results are exact and bit-identical
    /// to the run the crash interrupted.
    Recovered,
}

impl QueryOutcome {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOutcome::Completed => "completed",
            QueryOutcome::DeadlineExceeded => "deadline-exceeded",
            QueryOutcome::FailedAfterRetries => "failed-after-retries",
            QueryOutcome::Cancelled => "cancelled",
            QueryOutcome::Shed => "shed",
            QueryOutcome::Recovered => "recovered",
        }
    }
}

/// Everything routed back to one query when it completes.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// The query's id.
    pub qid: QueryId,
    /// `"probe"`, `"groupby"`, `"pipeline"`, `"upsert"`, or `"replay"`
    /// (the synthetic report of [`crate::ServeSession::recover_replay`]).
    pub kind: &'static str,
    /// Input tuples the query submitted.
    pub tuples: u64,
    /// Probe: key matches found. GroupBy/Pipeline: tuples aggregated
    /// into the query's table.
    pub matches: u64,
    /// Pipeline only: first-stage join matches before the filter.
    pub matched: u64,
    /// Probe only: order-independent checksum of matched payloads.
    pub checksum: u64,
    /// Probe with materialization: first-match payload per probe tuple,
    /// in the query's input order.
    pub out: Vec<u64>,
    /// The query's exact engine counters (its lane's ledger): lookups,
    /// stages, latch retries, prefetches, nodes visited, tag rejects.
    /// For retried queries this *includes* the work of aborted attempts,
    /// so per-query reports still sum to the session's global stats.
    pub stats: EngineStats,
    /// Submit-to-completion latency (includes admission queueing).
    pub latency_ns: u64,
    /// How service ended. Result fields (`matches`, `checksum`, `out`,
    /// ...) are populated only for [`QueryOutcome::Completed`].
    pub outcome: QueryOutcome,
    /// Attempts that ran in the window (0 for shed queries, 1 for the
    /// common fault-free case, up to `1 + max_retries` with retries).
    pub attempts: u32,
    /// Whether an open circuit breaker served this query a degraded plan
    /// (tier rung down, or pipeline two-phase fallback).
    pub degraded: bool,
    /// Tenant the query was submitted under (see [`SubmitOpts::tenant`]).
    pub tenant: u32,
    /// Flight-recorder tail: the last-K trace events of the query's final
    /// attempt, in recording order. Populated only when
    /// [`ServeConfig::flight_recorder`](crate::ServeConfig::flight_recorder)
    /// is non-zero **and** the query ended in
    /// [`QueryOutcome::DeadlineExceeded`] or
    /// [`QueryOutcome::FailedAfterRetries`] — healthy queries retain
    /// nothing, so steady-state serving pays only the ring's bounded
    /// buffer. A deadline victim's tail ends with the
    /// [`amac_trace::EventKind::Deadline`] instant (the cancelled lane
    /// records no further events).
    pub flight: Vec<amac_trace::TraceEvent>,
}
