//! The serving layer's client-facing vocabulary: requests, query ids,
//! per-query reports, and the backpressure error.

use amac::engine::EngineStats;
use amac_hashtable::AggTable;
use amac_ops::groupby::GroupByConfig;
use amac_ops::join::ProbeConfig;
use amac_ops::pipeline::PipelineConfig;
use amac_workload::Relation;

/// Identifies one submitted query for the lifetime of a serving session
/// (monotonically increasing, never reused — unlike the window *lane*,
/// which is recycled as queries come and go).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl core::fmt::Display for QueryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One client request. Probe-shaped requests run against the session's
/// shared catalog table; aggregate-producing requests bring their own
/// output [`AggTable`] (result routing: every query's aggregates land in
/// *its* table, bit-identical to a solo run).
pub enum Request<'a> {
    /// Probe the catalog table with `probes` (hash-join probe semantics
    /// per `cfg`: early-exit or scan-all, optional materialization).
    Probe {
        /// The query's probe stream.
        probes: &'a Relation,
        /// Probe semantics.
        cfg: ProbeConfig,
    },
    /// Aggregate `input` into the query's own `table`.
    GroupBy {
        /// Tuples to aggregate.
        input: &'a Relation,
        /// The query's private output table.
        table: &'a AggTable,
        /// Group-by tuning.
        cfg: GroupByConfig,
    },
    /// Fused probe → filter → group-by: probe the catalog table with
    /// `fact`, filter on the probe payload, aggregate survivors into the
    /// query's own `table` — the whole chain in the shared window.
    Pipeline {
        /// The query's fact stream.
        fact: &'a Relation,
        /// The query's private output table.
        table: &'a AggTable,
        /// Pipeline tuning (filter selectivity, hints).
        cfg: PipelineConfig,
    },
}

impl Request<'_> {
    /// The tuples this request will feed through the window.
    pub fn input_len(&self) -> usize {
        match self {
            Request::Probe { probes, .. } => probes.len(),
            Request::GroupBy { input, .. } => input.len(),
            Request::Pipeline { fact, .. } => fact.len(),
        }
    }
}

/// Admission refused: both the active set and the pending queue are at
/// capacity. Open-loop clients shed the query (and count it); closed-loop
/// clients retry after draining some work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Queries currently sharing the window.
    pub active: usize,
    /// Queries queued for admission.
    pub pending: usize,
    /// The pending-queue bound that was hit.
    pub max_pending: usize,
}

impl core::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "serving session at capacity: {} active, {}/{} pending",
            self.active, self.pending, self.max_pending
        )
    }
}

impl std::error::Error for Backpressure {}

/// Everything routed back to one query when it completes.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// The query's id.
    pub qid: QueryId,
    /// `"probe"`, `"groupby"` or `"pipeline"`.
    pub kind: &'static str,
    /// Input tuples the query submitted.
    pub tuples: u64,
    /// Probe: key matches found. GroupBy/Pipeline: tuples aggregated
    /// into the query's table.
    pub matches: u64,
    /// Pipeline only: first-stage join matches before the filter.
    pub matched: u64,
    /// Probe only: order-independent checksum of matched payloads.
    pub checksum: u64,
    /// Probe with materialization: first-match payload per probe tuple,
    /// in the query's input order.
    pub out: Vec<u64>,
    /// The query's exact engine counters (its lane's ledger): lookups,
    /// stages, latch retries, prefetches, nodes visited, tag rejects.
    pub stats: EngineStats,
    /// Submit-to-completion latency (includes admission queueing).
    pub latency_ns: u64,
}
