//! The serving scheduler: admission, deficit-round-robin interleaving,
//! one shared in-flight window, per-query routing and accounting.

use std::collections::VecDeque;
use std::time::Instant;

use amac::engine::mux::{Mux, Tagged};
use amac::engine::{EngineStats, TuningParams};
use amac_hashtable::HashTable;
use amac_metrics::LatencyHistogram;
use amac_ops::groupby::GroupByOp;
use amac_ops::join::ProbeOp;
use amac_ops::pipeline::fused_probe_groupby_op;
use amac_runtime::AmacSession;
use amac_workload::Tuple;

use crate::request::{Backpressure, QueryId, QueryReport, Request};
use crate::tenant::TenantOp;

/// Serving-session policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shared-window tuning: `in_flight` is the window `M` that *all*
    /// active queries' lookups share.
    pub params: TuningParams,
    /// Admission bound: queries concurrently sharing the window. More
    /// active queries = finer interleaving but more cache working sets
    /// competing; the window itself stays `M` deep regardless.
    pub max_active: usize,
    /// Backpressure bound: queries waiting for admission before
    /// [`ServeSession::submit`] refuses outright.
    pub max_pending: usize,
    /// Deficit-round-robin quantum in tuples: how many of one query's
    /// lookups are fed before the next query's turn. Small quanta mix
    /// queries tightly in the window; large quanta amortize dispatch.
    pub quantum: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: TuningParams::default(),
            max_active: 8,
            max_pending: 64,
            quantum: 256,
        }
    }
}

/// One admitted query's scheduling state.
struct Active<'a> {
    qid: QueryId,
    lane: u32,
    kind: &'static str,
    inputs: &'a [Tuple],
    cursor: usize,
    deficit: usize,
    weight: u32,
    submitted: Instant,
}

/// One query waiting for admission.
struct Pending<'a> {
    qid: QueryId,
    req: Request<'a>,
    weight: u32,
    submitted: Instant,
}

/// Aggregate outcome of a serving session.
#[derive(Debug, Clone, Default)]
pub struct ServeOutput {
    /// Per-query reports in completion order.
    pub reports: Vec<QueryReport>,
    /// Merged engine counters over all queries.
    pub stats: EngineStats,
    /// Mean shared-window occupancy over the whole session (out of the
    /// configured `M`) — deterministic, see
    /// [`AmacSession::mean_occupancy`].
    pub occupancy: f64,
    /// Window capacity the session ran with.
    pub window: usize,
    /// Query-latency histogram (submit → completion, nanoseconds).
    pub latency: LatencyHistogram,
    /// Queries refused at submission (pending queue full).
    pub rejected: u64,
    /// Wall time from session creation to [`ServeSession::finish`].
    pub seconds: f64,
}

impl ServeOutput {
    /// Fairness ratio: max over queries of nodes visited divided by the
    /// mean (1.0 = every query paid the same traversal work; the single
    /// definition lives in [`amac_ops::multi::fairness_nodes_ratio`]).
    pub fn fairness_nodes_ratio(&self) -> f64 {
        amac_ops::multi::fairness_nodes_ratio(self.reports.iter().map(|r| r.stats.nodes_visited))
    }
}

/// A cross-query serving session: many concurrent client queries share
/// **one** AMAC in-flight window.
///
/// Mechanics per [`pump`](ServeSession::pump) round:
///
/// 1. deficit-round-robin over active queries: each gets
///    `quantum × weight` tuples of credit, tagged with its lane and fed
///    into the shared [`AmacSession`] — the window never drains between
///    queries, so a finishing query's slots are refilled by the next
///    query's lookups in the same rotation;
/// 2. if no query had input left, the window is drained so tails retire;
/// 3. completed queries (all lookups retired, proven by the lane ledger)
///    are removed, their results routed into a [`QueryReport`], and
///    pending queries admitted into the freed lanes.
///
/// Results are **bit-identical to solo runs** by construction: each query
/// owns its operator (private cursor, private output), fed in its own
/// input order; sharing the window changes only *when* stages run, never
/// what they compute.
pub struct ServeSession<'a> {
    catalog: &'a HashTable,
    cfg: ServeConfig,
    mux: Mux<TenantOp<'a>>,
    window: AmacSession<Mux<TenantOp<'a>>>,
    stats: EngineStats,
    active: Vec<Active<'a>>,
    pending: VecDeque<Pending<'a>>,
    finished: Vec<QueryReport>,
    latency: LatencyHistogram,
    tag_buf: Vec<Tagged<Tuple>>,
    rr: usize,
    next_qid: u64,
    rejected: u64,
    born: Instant,
}

impl<'a> ServeSession<'a> {
    /// A session serving queries against the shared `catalog` table.
    pub fn new(catalog: &'a HashTable, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig { max_active: cfg.max_active.max(1), ..cfg };
        let window = AmacSession::new(cfg.params.in_flight);
        ServeSession {
            catalog,
            cfg,
            mux: Mux::new(),
            window,
            stats: EngineStats::default(),
            active: Vec::new(),
            pending: VecDeque::new(),
            finished: Vec::new(),
            latency: LatencyHistogram::new(),
            tag_buf: Vec::new(),
            rr: 0,
            next_qid: 0,
            rejected: 0,
            born: Instant::now(),
        }
    }

    /// Submit a query with equal scheduling weight.
    pub fn submit(&mut self, req: Request<'a>) -> Result<QueryId, Backpressure> {
        self.submit_weighted(req, 1)
    }

    /// Submit a query with a deficit-round-robin `weight` (2 = twice the
    /// per-round tuple share). Admits immediately if a lane is free,
    /// queues if the pending bound allows, otherwise refuses — the
    /// backpressure signal an open-loop client sheds on.
    pub fn submit_weighted(
        &mut self,
        req: Request<'a>,
        weight: u32,
    ) -> Result<QueryId, Backpressure> {
        if self.active.len() >= self.cfg.max_active && self.pending.len() >= self.cfg.max_pending {
            self.rejected += 1;
            return Err(Backpressure {
                active: self.active.len(),
                pending: self.pending.len(),
                max_pending: self.cfg.max_pending,
            });
        }
        let qid = QueryId(self.next_qid);
        self.next_qid += 1;
        let submitted = Instant::now();
        if self.active.len() < self.cfg.max_active {
            self.activate(qid, req, weight, submitted);
        } else {
            self.pending.push_back(Pending { qid, req, weight, submitted });
        }
        Ok(qid)
    }

    fn activate(&mut self, qid: QueryId, req: Request<'a>, weight: u32, submitted: Instant) {
        let (op, inputs, kind): (TenantOp<'a>, &'a [Tuple], &'static str) = match req {
            Request::Probe { probes, cfg } => (
                TenantOp::Probe(ProbeOp::new(self.catalog, &cfg, probes.len())),
                &probes.tuples,
                "probe",
            ),
            Request::GroupBy { input, table, cfg } => {
                (TenantOp::GroupBy(GroupByOp::new(table, &cfg)), &input.tuples, "groupby")
            }
            Request::Pipeline { fact, table, cfg } => (
                TenantOp::Pipeline(Box::new(fused_probe_groupby_op(self.catalog, table, &cfg))),
                &fact.tuples,
                "pipeline",
            ),
        };
        let lane = self.mux.add(op);
        self.active.push(Active {
            qid,
            lane,
            kind,
            inputs,
            cursor: 0,
            deficit: 0,
            weight: weight.max(1),
            submitted,
        });
    }

    /// One scheduling round. Returns the number of tuples fed; `0` means
    /// every active query's input is exhausted (the round then drained
    /// the window so tail lookups retire and queries complete).
    pub fn pump(&mut self) -> usize {
        let mut fed = 0usize;
        let n = self.active.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let (lane, lo, hi) = {
                let a = &mut self.active[idx];
                let remaining = a.inputs.len() - a.cursor;
                if remaining == 0 {
                    a.deficit = 0;
                    continue;
                }
                a.deficit += self.cfg.quantum.max(1) * a.weight as usize;
                let take = a.deficit.min(remaining);
                let lo = a.cursor;
                a.cursor += take;
                a.deficit -= take;
                (a.lane, lo, lo + take)
            };
            let inputs = self.active[idx].inputs;
            self.tag_buf.clear();
            self.tag_buf.extend(inputs[lo..hi].iter().map(|t| Tagged::new(lane, *t)));
            self.window.feed(&mut self.mux, &self.tag_buf, &mut self.stats);
            fed += hi - lo;
        }
        if n > 0 {
            self.rr = (self.rr + 1) % n;
        }
        if fed == 0 && self.window.in_flight() > 0 {
            self.window.drain(&mut self.mux, &mut self.stats);
        }
        self.sweep_completed();
        fed
    }

    /// Drive every submitted query (and everything admitted from the
    /// pending queue along the way) to completion.
    pub fn run_to_completion(&mut self) {
        while !self.active.is_empty() || !self.pending.is_empty() {
            self.pump();
        }
    }

    fn sweep_completed(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            let done = {
                let a = &self.active[i];
                a.cursor == a.inputs.len()
                    && self.mux.observed(a.lane).lookups >= a.inputs.len() as u64
            };
            if !done {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            let (op, stats) = self.mux.remove(a.lane);
            let latency_ns = a.submitted.elapsed().as_nanos() as u64;
            self.latency.record(latency_ns);
            let mut report = QueryReport {
                qid: a.qid,
                kind: a.kind,
                tuples: a.inputs.len() as u64,
                stats,
                latency_ns,
                ..Default::default()
            };
            match op {
                TenantOp::Probe(mut p) => {
                    report.matches = p.matches();
                    report.checksum = p.checksum();
                    report.out = p.take_out();
                }
                TenantOp::GroupBy(g) => report.matches = g.tuples(),
                TenantOp::Pipeline(f) => {
                    report.matched = f.pipe().up().matches();
                    report.matches = f.pipe().down().inner().tuples();
                }
            }
            self.finished.push(report);
            self.admit_from_pending();
        }
        if self.active.is_empty() {
            self.rr = 0;
        } else {
            self.rr %= self.active.len();
        }
    }

    fn admit_from_pending(&mut self) {
        while self.active.len() < self.cfg.max_active {
            match self.pending.pop_front() {
                Some(p) => self.activate(p.qid, p.req, p.weight, p.submitted),
                None => break,
            }
        }
    }

    /// Queries currently sharing the window.
    pub fn active_queries(&self) -> usize {
        self.active.len()
    }

    /// Queries waiting for admission.
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Queries completed so far.
    pub fn completed_queries(&self) -> usize {
        self.finished.len()
    }

    /// Queries refused at submission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Lookups currently in flight in the shared window.
    pub fn in_flight(&self) -> usize {
        self.window.in_flight()
    }

    /// Mean shared-window occupancy so far (deterministic).
    pub fn mean_occupancy(&self) -> f64 {
        self.window.mean_occupancy()
    }

    /// Close the session: everything still active or pending is driven to
    /// completion, then the per-query reports and aggregate accounting
    /// are returned.
    pub fn finish(mut self) -> ServeOutput {
        self.run_to_completion();
        ServeOutput {
            occupancy: self.window.mean_occupancy(),
            window: self.window.capacity(),
            reports: self.finished,
            stats: self.stats,
            latency: self.latency,
            rejected: self.rejected,
            seconds: self.born.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac::engine::Technique;
    use amac_hashtable::AggTable;
    use amac_ops::groupby::GroupByConfig;
    use amac_ops::join::ProbeConfig;
    use amac_ops::pipeline::{probe_then_groupby, PipelineConfig};
    use amac_workload::{FilterSpec, Relation};

    fn catalog(n: usize) -> (Relation, HashTable) {
        let dim = Relation::fk_dimension(n, (n as u64 / 4).max(4), 0xCA7);
        let ht = HashTable::build_serial(&dim);
        (dim, ht)
    }

    #[test]
    fn probe_queries_match_solo_results_including_order() {
        let (dim, ht) = catalog(4096);
        let q1 = Relation::fk_uniform(&dim, 10_000, 0x11);
        let q2 = Relation::zipf(10_000, 4096, 1.0, 0x12);
        let cfg = ProbeConfig::default(); // materializing, early-exit
        let solo1 = amac_ops::join::probe(&ht, &q1, Technique::Amac, &cfg);
        let solo2 = amac_ops::join::probe(&ht, &q2, Technique::Amac, &cfg);

        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let a = srv.submit(Request::Probe { probes: &q1, cfg: cfg.clone() }).unwrap();
        let b = srv.submit(Request::Probe { probes: &q2, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 2);
        let ra = out.reports.iter().find(|r| r.qid == a).unwrap();
        let rb = out.reports.iter().find(|r| r.qid == b).unwrap();
        assert_eq!(ra.matches, solo1.matches);
        assert_eq!(ra.checksum, solo1.checksum);
        assert_eq!(ra.out, solo1.out, "materialized output reordered by sharing");
        assert_eq!(rb.matches, solo2.matches);
        assert_eq!(rb.checksum, solo2.checksum);
        assert_eq!(rb.out, solo2.out);
        assert_eq!(ra.stats.nodes_visited, solo1.stats.nodes_visited);
        assert_eq!(rb.stats.nodes_visited, solo2.stats.nodes_visited);
        assert_eq!(out.stats.lookups, 20_000);
    }

    #[test]
    fn groupby_and_pipeline_queries_share_one_window() {
        let (dim, ht) = catalog(2048);
        let gb_in = amac_workload::GroupByInput::zipf(64, 8_000, 0.9, 0x21).relation;
        let gb_table = AggTable::for_groups(64);
        let fact = Relation::fk_uniform(&dim, 8_000, 0x22);
        let pipe_table = AggTable::for_groups(512);
        let pipe_cfg =
            PipelineConfig { filter: Some(FilterSpec::selectivity(0.5)), ..Default::default() };

        // Solo references.
        let gb_solo = AggTable::for_groups(64);
        amac_ops::groupby::groupby(&gb_solo, &gb_in, Technique::Amac, &GroupByConfig::default());
        let pipe_solo = AggTable::for_groups(512);
        let ps = probe_then_groupby(&ht, &pipe_solo, &fact, Technique::Amac, &pipe_cfg);

        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 128, ..Default::default() });
        srv.submit(Request::GroupBy {
            input: &gb_in,
            table: &gb_table,
            cfg: GroupByConfig::default(),
        })
        .unwrap();
        srv.submit(Request::Pipeline { fact: &fact, table: &pipe_table, cfg: pipe_cfg }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 2);
        let gb = out.reports.iter().find(|r| r.kind == "groupby").unwrap();
        let pipe = out.reports.iter().find(|r| r.kind == "pipeline").unwrap();
        assert_eq!(gb.matches, 8_000);
        assert_eq!(pipe.matched, ps.matched);
        assert_eq!(pipe.matches, ps.aggregated);

        let snap = |t: &AggTable| {
            let mut g = t.groups();
            g.sort_by_key(|(k, _)| *k);
            g
        };
        assert_eq!(snap(&gb_table), snap(&gb_solo), "group-by aggregates diverge");
        assert_eq!(snap(&pipe_table), snap(&pipe_solo), "pipeline aggregates diverge");
    }

    #[test]
    fn admission_bounds_and_backpressure() {
        let (dim, ht) = catalog(256);
        let q = Relation::fk_uniform(&dim, 512, 0x31);
        let cfg = ServeConfig { max_active: 2, max_pending: 2, ..Default::default() };
        let mut srv = ServeSession::new(&ht, cfg);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        for _ in 0..4 {
            srv.submit(Request::Probe { probes: &q, cfg: pcfg.clone() }).unwrap();
        }
        assert_eq!(srv.active_queries(), 2);
        assert_eq!(srv.pending_queries(), 2);
        let err = srv
            .submit(Request::Probe { probes: &q, cfg: pcfg.clone() })
            .expect_err("5th query must hit backpressure");
        assert_eq!(err.max_pending, 2);
        assert_eq!(srv.rejected(), 1);
        // Draining completes everyone and admits the pending queue.
        srv.run_to_completion();
        assert_eq!(srv.completed_queries(), 4);
        // Capacity freed: submission works again.
        srv.submit(Request::Probe { probes: &q, cfg: pcfg }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 5);
        assert_eq!(out.rejected, 1);
        // Latency histogram has one observation per completed query.
        assert_eq!(out.latency.count(), 5);
        assert!(out.latency.quantile(0.99).is_some());
    }

    #[test]
    fn small_queries_keep_the_shared_window_fuller_than_private_windows() {
        let (dim, ht) = catalog(4096);
        // 16 small queries, each smaller than 4 windows' worth of input.
        let qs: Vec<Relation> =
            (0..16).map(|i| Relation::fk_uniform(&dim, 256, 0x40 + i)).collect();
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };

        // Private windows: one session per query (what per-query engines do).
        let mut private_occ = 0.0;
        for q in &qs {
            let mut srv = ServeSession::new(&ht, ServeConfig::default());
            srv.submit(Request::Probe { probes: q, cfg: pcfg.clone() }).unwrap();
            private_occ += srv.finish().occupancy;
        }
        private_occ /= qs.len() as f64;

        // Shared window: all 16 interleave.
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig { max_active: 16, quantum: 64, ..Default::default() },
        );
        for q in &qs {
            srv.submit(Request::Probe { probes: q, cfg: pcfg.clone() }).unwrap();
        }
        let out = srv.finish();
        assert_eq!(out.reports.len(), 16);
        assert!(
            out.occupancy > private_occ,
            "shared window occupancy {:.2} should beat per-query windows {:.2}",
            out.occupancy,
            private_occ
        );
        // And it should be near the full window.
        assert!(out.occupancy > 0.8 * out.window as f64, "occupancy {:.2}", out.occupancy);
    }

    #[test]
    fn weighted_query_finishes_earlier_under_contention() {
        let (dim, ht) = catalog(1024);
        let heavy = Relation::fk_uniform(&dim, 8_192, 0x51);
        let light = Relation::fk_uniform(&dim, 8_192, 0x52);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let w =
            srv.submit_weighted(Request::Probe { probes: &heavy, cfg: pcfg.clone() }, 4).unwrap();
        let l = srv.submit(Request::Probe { probes: &light, cfg: pcfg }).unwrap();
        let out = srv.finish();
        // Completion order: the weight-4 query got 4x the feed share, so it
        // must complete first even though both arrived together.
        assert_eq!(out.reports[0].qid, w);
        assert_eq!(out.reports[1].qid, l);
    }

    #[test]
    fn empty_query_completes_immediately() {
        let (_dim, ht) = catalog(64);
        let empty = Relation::default();
        let mut srv = ServeSession::new(&ht, ServeConfig::default());
        let q = srv.submit(Request::Probe { probes: &empty, cfg: ProbeConfig::default() }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].qid, q);
        assert_eq!(out.reports[0].matches, 0);
        assert_eq!(out.reports[0].stats.lookups, 0);
    }

    #[test]
    fn query_ids_are_unique_and_monotone_across_reuse() {
        let (dim, ht) = catalog(128);
        let q = Relation::fk_uniform(&dim, 64, 0x61);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { max_active: 1, ..Default::default() });
        let mut ids = Vec::new();
        for _ in 0..6 {
            ids.push(srv.submit(Request::Probe { probes: &q, cfg: pcfg.clone() }).unwrap());
            srv.run_to_completion();
        }
        let out = srv.finish();
        assert_eq!(out.reports.len(), 6);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
