//! The serving scheduler: admission, deficit-round-robin interleaving,
//! one shared in-flight window, per-query routing and accounting — plus
//! the failure model: deadlines, bounded retry with sim-clock backoff,
//! per-tenant circuit breakers, and cooperative cancellation.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use amac::engine::mux::{Mux, Tagged};
use amac::engine::{run, EngineStats, LookupOp, Technique, TuningParams};
use amac_hashtable::HashTable;
use amac_metrics::LatencyHistogram;
use amac_ops::groupby::GroupByOp;
use amac_ops::join::ProbeOp;
use amac_ops::mutate::{MutateOp, ReplayOp};
use amac_ops::pipeline::{fused_probe_groupby_op, probe_then_groupby_two_phase, PipelineConfig};
use amac_runtime::AmacSession;
use amac_tier::{TierSpec, WalRecord};
use amac_trace::{TraceEvent, Tracer};
use amac_workload::Tuple;

use crate::request::{
    Backpressure, BreakerMode, QueryId, QueryOutcome, QueryReport, Request, Stalled, SubmitOpts,
};
use crate::tenant::TenantOp;

/// Serving-session policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shared-window tuning: `in_flight` is the window `M` that *all*
    /// active queries' lookups share.
    pub params: TuningParams,
    /// Admission bound: queries concurrently sharing the window. More
    /// active queries = finer interleaving but more cache working sets
    /// competing; the window itself stays `M` deep regardless.
    pub max_active: usize,
    /// Backpressure bound: queries waiting for admission before
    /// [`ServeSession::submit`] refuses outright.
    pub max_pending: usize,
    /// Deficit-round-robin quantum in tuples: how many of one query's
    /// lookups are fed before the next query's turn. Small quanta mix
    /// queries tightly in the window; large quanta amortize dispatch.
    pub quantum: usize,
    /// Retry budget for retryable queries (probes) beyond the first
    /// attempt. Fused pipelines are never retried — their group-by stage
    /// aggregates incrementally, so a re-run would double-count — they
    /// fail terminally (or the breaker degrades them to two-phase).
    pub max_retries: u32,
    /// Backoff before retry attempt `k` (1-based): `backoff_base << (k-1)`
    /// sim ticks, capped at [`backoff_cap`](ServeConfig::backoff_cap).
    /// Charged to the simulated clock, so backoff counts against
    /// deadlines deterministically.
    pub backoff_base: u64,
    /// Ceiling on one backoff wait, in sim ticks.
    pub backoff_cap: u64,
    /// Consecutive [`QueryOutcome::FailedAfterRetries`] outcomes from one
    /// tenant that open its circuit breaker.
    pub breaker_threshold: u32,
    /// Pumps an open breaker waits before letting one half-open health
    /// probe through at full service.
    pub breaker_probe_pumps: u64,
    /// What an open breaker does with the tripped tenant's new queries.
    pub breaker_mode: BreakerMode,
    /// Slot-rotation budget for one pump's window drain. Bounds the cost
    /// of a pump even if a lane is wedged (see
    /// [`AmacSession::drain_budgeted`]); combined with
    /// [`run_with_budget`](ServeSession::run_with_budget) it turns
    /// livelock into a reportable [`Stalled`].
    pub drain_budget: usize,
    /// Per-query flight recorder: `k > 0` installs a last-`k` ring tracer
    /// ([`amac_trace::Tracer::ring`]) on every attempt's lane op, stamped
    /// with the query's tenant. When the query ends in
    /// [`QueryOutcome::DeadlineExceeded`] or
    /// [`QueryOutcome::FailedAfterRetries`] the ring's tail is routed
    /// into [`QueryReport::flight`]; healthy completions drop theirs.
    /// `0` (the default) records nothing — tracing never touches the sim
    /// clock, so results and counters are bit-identical either way.
    pub flight_recorder: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: TuningParams::default(),
            max_active: 8,
            max_pending: 64,
            quantum: 256,
            max_retries: 2,
            backoff_base: 64,
            backoff_cap: 1024,
            breaker_threshold: 3,
            breaker_probe_pumps: 8,
            breaker_mode: BreakerMode::Degrade,
            drain_budget: 1 << 20,
            flight_recorder: 0,
        }
    }
}

/// Why an active query is being drained out of the window instead of fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aborting {
    /// A transient fault poisoned this attempt; requeue with backoff once
    /// the lane's in-flight lookups retire.
    Retry,
    /// Terminal: report this outcome once the lane drains.
    Final(QueryOutcome),
}

/// Everything needed to (re)install one query attempt on a lane.
struct Attempt<'a> {
    qid: QueryId,
    req: Request<'a>,
    weight: u32,
    tenant: u32,
    /// 0-based attempt index about to run.
    attempt: u32,
    /// Absolute sim-tick deadline (fixed at first activation).
    deadline_at: Option<u64>,
    degraded: bool,
    /// Crash-recovery re-run (reports [`QueryOutcome::Recovered`]).
    recovered: bool,
    /// Engine counters spent by aborted prior attempts.
    spent: EngineStats,
    submitted: Instant,
}

/// One admitted query's scheduling state.
struct Active<'a> {
    qid: QueryId,
    lane: u32,
    kind: &'static str,
    inputs: &'a [Tuple],
    cursor: usize,
    deficit: usize,
    weight: u32,
    submitted: Instant,
    /// The original request, kept for retries (cheap: all borrows).
    req: Request<'a>,
    tenant: u32,
    attempt: u32,
    deadline_at: Option<u64>,
    aborting: Option<Aborting>,
    spent: EngineStats,
    degraded: bool,
    recovered: bool,
    /// Sim tick at which this attempt entered the window (the start of
    /// the query span recorded into the session tracer).
    born_at: u64,
}

/// One query waiting for admission.
struct Pending<'a> {
    qid: QueryId,
    req: Request<'a>,
    weight: u32,
    tenant: u32,
    deadline_ticks: Option<u64>,
    degraded: bool,
    recovered: bool,
    submitted: Instant,
}

/// One query in retry backoff.
struct Waiting<'a> {
    seed: Attempt<'a>,
    /// Earliest sim tick the retry may re-enter the window.
    not_before: u64,
}

#[derive(Debug, Clone, Copy, Default)]
enum BreakerState {
    #[default]
    Closed,
    /// Shedding/degrading; lets one probe through at `probe_at` pumps.
    Open { probe_at: u64 },
    /// One full-service health probe is in flight.
    HalfOpen,
}

/// Per-tenant failure tracking.
#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    /// Consecutive terminally-failed queries.
    fails: u32,
    state: BreakerState,
}

/// Aggregate outcome of a serving session.
#[derive(Debug, Clone, Default)]
pub struct ServeOutput {
    /// Per-query reports in completion order (exactly one per submitted
    /// query, whatever its [`QueryOutcome`]).
    pub reports: Vec<QueryReport>,
    /// Merged engine counters over all queries.
    pub stats: EngineStats,
    /// Mean shared-window occupancy over the whole session (out of the
    /// configured `M`) — deterministic, see
    /// [`AmacSession::mean_occupancy`].
    pub occupancy: f64,
    /// Window capacity the session ran with.
    pub window: usize,
    /// Query-latency histogram (submit → completion, nanoseconds;
    /// completed queries only).
    pub latency: LatencyHistogram,
    /// Queries refused at submission (pending queue full).
    pub rejected: u64,
    /// Wall time from session creation to [`ServeSession::finish`].
    pub seconds: f64,
    /// The session-level tracer (query spans, sheds, deadlines), taken at
    /// [`ServeSession::finish`]. Disabled unless the caller installed one
    /// via [`ServeSession::set_tracer`].
    pub trace: Tracer,
}

impl ServeOutput {
    /// Fairness ratio: max over queries of nodes visited divided by the
    /// mean (1.0 = every query paid the same traversal work; the single
    /// definition lives in [`amac_ops::multi::fairness_nodes_ratio`]).
    pub fn fairness_nodes_ratio(&self) -> f64 {
        amac_ops::multi::fairness_nodes_ratio(self.reports.iter().map(|r| r.stats.nodes_visited))
    }

    /// Reports with the given outcome.
    pub fn count(&self, outcome: QueryOutcome) -> u64 {
        self.reports.iter().filter(|r| r.outcome == outcome).count() as u64
    }

    /// Retries across all queries: attempts beyond each query's first.
    pub fn retries(&self) -> u64 {
        self.reports.iter().map(|r| (r.attempts.max(1) - 1) as u64).sum()
    }
}

/// A cross-query serving session: many concurrent client queries share
/// **one** AMAC in-flight window.
///
/// Mechanics per [`pump`](ServeSession::pump) round:
///
/// 1. deadline sweep: active queries past their sim-tick deadline are
///    cooperatively cancelled ([`Mux::cancel`]) and drain out;
/// 2. retry promotion: queries whose backoff expired re-enter the window
///    (when every query is backing off and the window is empty, the sim
///    clock jumps to the earliest retry time — backoff is *charged*, not
///    busy-waited);
/// 3. deficit-round-robin over active queries: each gets
///    `quantum × weight` tuples of credit, tagged with its lane and fed
///    into the shared [`AmacSession`];
/// 4. if no query had input left, the window is drained (under
///    [`ServeConfig::drain_budget`]) so tails retire;
/// 5. fault sweep: a lane whose ledger shows a failed lookup has its
///    attempt cancelled; retryable queries requeue with exponential
///    backoff, others fail terminally;
/// 6. completed and fully-drained-aborted queries are removed, their
///    results routed into a [`QueryReport`], and pending queries admitted
///    into the freed lanes.
///
/// Results of surviving queries are **bit-identical to solo runs** by
/// construction: faults are a pure function of `(seed, key, hop)`, so
/// sharing the window — or degrading *other* tenants — changes only
/// *when* stages run, never what a completing query computes.
pub struct ServeSession<'a> {
    catalog: &'a HashTable,
    cfg: ServeConfig,
    mux: Mux<TenantOp<'a>>,
    window: AmacSession<Mux<TenantOp<'a>>>,
    stats: EngineStats,
    active: Vec<Active<'a>>,
    pending: VecDeque<Pending<'a>>,
    waiting: Vec<Waiting<'a>>,
    breakers: BTreeMap<u32, Breaker>,
    finished: Vec<QueryReport>,
    latency: LatencyHistogram,
    /// WAL records drained from completed (or aborted) mutation lanes,
    /// in lane-retirement order — the durability frontier the client
    /// seals/persists via [`ServeSession::drain_wal`].
    wal_buf: Vec<WalRecord>,
    tag_buf: Vec<Tagged<Tuple>>,
    /// Session-level tracer: query spans (activation → settle), sheds and
    /// deadline instants — the serving-layer events no single lane op can
    /// see. Disabled unless [`ServeSession::set_tracer`] installs one.
    trace: Tracer,
    rr: usize,
    next_qid: u64,
    rejected: u64,
    pumps: u64,
    born: Instant,
}

fn kind_of(req: &Request<'_>) -> &'static str {
    match req {
        Request::Probe { .. } => "probe",
        Request::GroupBy { .. } => "groupby",
        Request::Pipeline { .. } => "pipeline",
        Request::Upsert { .. } => "upsert",
    }
}

impl<'a> ServeSession<'a> {
    /// A session serving queries against the shared `catalog` table.
    pub fn new(catalog: &'a HashTable, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig { max_active: cfg.max_active.max(1), ..cfg };
        let window = AmacSession::new(cfg.params.in_flight);
        ServeSession {
            catalog,
            cfg,
            mux: Mux::new(),
            window,
            stats: EngineStats::default(),
            active: Vec::new(),
            pending: VecDeque::new(),
            waiting: Vec::new(),
            breakers: BTreeMap::new(),
            finished: Vec::new(),
            latency: LatencyHistogram::new(),
            wal_buf: Vec::new(),
            tag_buf: Vec::new(),
            trace: Tracer::off(),
            rr: 0,
            next_qid: 0,
            rejected: 0,
            pumps: 0,
            born: Instant::now(),
        }
    }

    /// Submit a query with default options (weight 1, tenant 0, no
    /// deadline).
    pub fn submit(&mut self, req: Request<'a>) -> Result<QueryId, Backpressure> {
        self.submit_opts(req, SubmitOpts::default())
    }

    /// Submit a query with a deficit-round-robin `weight` (2 = twice the
    /// per-round tuple share).
    pub fn submit_weighted(
        &mut self,
        req: Request<'a>,
        weight: u32,
    ) -> Result<QueryId, Backpressure> {
        self.submit_opts(req, SubmitOpts { weight, ..Default::default() })
    }

    /// Submit a query with full options. Admits immediately if a lane is
    /// free, queues if the pending bound allows, otherwise refuses — the
    /// backpressure signal carries a deterministic
    /// [`retry_after_pumps`](Backpressure::retry_after_pumps) hint for
    /// closed-loop clients. If the tenant's circuit breaker is open the
    /// query is shed or degraded per [`ServeConfig::breaker_mode`] (it
    /// still gets a report, under its [`QueryId`]).
    pub fn submit_opts(
        &mut self,
        mut req: Request<'a>,
        opts: SubmitOpts,
    ) -> Result<QueryId, Backpressure> {
        if self.active.len() >= self.cfg.max_active && self.pending.len() >= self.cfg.max_pending {
            self.rejected += 1;
            return Err(Backpressure {
                active: self.active.len(),
                pending: self.pending.len(),
                max_pending: self.cfg.max_pending,
                retry_after_pumps: self.retry_hint(),
            });
        }
        let qid = QueryId(self.next_qid);
        self.next_qid += 1;
        let submitted = Instant::now();
        let tenant = opts.tenant;
        let mut degraded = false;
        if self.breaker_tripped(tenant) {
            match self.cfg.breaker_mode {
                BreakerMode::Shed => {
                    self.emit_shed(qid, &req, tenant, submitted);
                    return Ok(qid);
                }
                BreakerMode::Degrade => {
                    let mut shed_now = false;
                    match &mut req {
                        Request::Probe { cfg, .. } if cfg.fault.is_some() => {
                            // One rung down the tier ladder: fewer far
                            // loads, fewer fault opportunities (AllNear
                            // faults never — near loads are unchecked).
                            let spec = cfg.tier.unwrap_or_else(|| TierSpec::headers_near(1));
                            match spec.policy.degrade() {
                                Some(p) => {
                                    cfg.tier = Some(TierSpec { policy: p, ..spec });
                                    degraded = true;
                                }
                                None => shed_now = true,
                            }
                        }
                        Request::Pipeline { fact, table, cfg } if cfg.fault.is_some() => {
                            // The fused plan cannot be retried (its
                            // group-by aggregates incrementally), so the
                            // breaker swaps the plan: fault-free two-phase,
                            // run synchronously, same results.
                            let safe = PipelineConfig { fault: None, ..cfg.clone() };
                            let out = probe_then_groupby_two_phase(
                                self.catalog,
                                table,
                                fact,
                                Technique::Amac,
                                &safe,
                            );
                            self.stats.merge(&out.stats);
                            let latency_ns = submitted.elapsed().as_nanos() as u64;
                            self.latency.record(latency_ns);
                            self.finished.push(QueryReport {
                                qid,
                                kind: "pipeline",
                                tuples: fact.len() as u64,
                                matched: out.matched,
                                matches: out.aggregated,
                                stats: out.stats,
                                latency_ns,
                                outcome: QueryOutcome::Completed,
                                attempts: 1,
                                degraded: true,
                                tenant,
                                ..Default::default()
                            });
                            return Ok(qid);
                        }
                        // Unfaultable requests pass through unchanged.
                        _ => {}
                    }
                    if shed_now {
                        self.emit_shed(qid, &req, tenant, submitted);
                        return Ok(qid);
                    }
                }
            }
        }
        if self.active.len() < self.cfg.max_active {
            let deadline_at = opts.deadline_ticks.map(|d| self.mux.sim_now() + d);
            self.activate(Attempt {
                qid,
                req,
                weight: opts.weight,
                tenant,
                attempt: 0,
                deadline_at,
                degraded,
                recovered: opts.recovered,
                spent: EngineStats::default(),
                submitted,
            });
        } else {
            self.pending.push_back(Pending {
                qid,
                req,
                weight: opts.weight,
                tenant,
                deadline_ticks: opts.deadline_ticks,
                degraded,
                recovered: opts.recovered,
                submitted,
            });
        }
        Ok(qid)
    }

    /// Cooperatively cancel a query wherever it is: active (its in-flight
    /// lookups retire without executing further stages), backing off, or
    /// still pending. It completes with [`QueryOutcome::Cancelled`] and
    /// no results. Returns `false` if the id is unknown or already
    /// completed.
    pub fn cancel(&mut self, qid: QueryId) -> bool {
        if let Some(i) = self.active.iter().position(|a| a.qid == qid) {
            let lane = self.active[i].lane;
            if !matches!(self.active[i].aborting, Some(Aborting::Final(_))) {
                self.mux.cancel(lane);
                self.active[i].aborting = Some(Aborting::Final(QueryOutcome::Cancelled));
            }
            return true;
        }
        if let Some(i) = self.waiting.iter().position(|w| w.seed.qid == qid) {
            let w = self.waiting.remove(i);
            self.emit_terminal(w.seed, QueryOutcome::Cancelled);
            return true;
        }
        if let Some(i) = self.pending.iter().position(|p| p.qid == qid) {
            let p = self.pending.remove(i).expect("indexed pending entry");
            self.finished.push(QueryReport {
                qid: p.qid,
                kind: kind_of(&p.req),
                tuples: p.req.input_len() as u64,
                latency_ns: p.submitted.elapsed().as_nanos() as u64,
                outcome: QueryOutcome::Cancelled,
                attempts: 0,
                degraded: p.degraded,
                tenant: p.tenant,
                ..Default::default()
            });
            return true;
        }
        false
    }

    /// One scheduling round. Returns the number of tuples fed; `0` means
    /// every feedable query's input is exhausted (the round then drained
    /// the window — under the drain budget — so tail lookups retire and
    /// queries complete).
    pub fn pump(&mut self) -> usize {
        self.pumps += 1;
        // Everyone backing off + empty window: sim time cannot advance
        // through work, so charge the wait to the clock directly.
        if self.active.is_empty() && !self.waiting.is_empty() {
            if let Some(t) = self.waiting.iter().map(|w| w.not_before).min() {
                self.mux.sim_advance_to(t);
            }
        }
        self.check_deadlines();
        self.promote_waiting();
        self.admit_from_pending();
        let mut fed = 0usize;
        let n = self.active.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let (lane, lo, hi) = {
                let a = &mut self.active[idx];
                if a.aborting.is_some() {
                    a.deficit = 0;
                    continue;
                }
                let remaining = a.inputs.len() - a.cursor;
                if remaining == 0 {
                    a.deficit = 0;
                    continue;
                }
                a.deficit += self.cfg.quantum.max(1) * a.weight as usize;
                let take = a.deficit.min(remaining);
                let lo = a.cursor;
                a.cursor += take;
                a.deficit -= take;
                (a.lane, lo, lo + take)
            };
            let inputs = self.active[idx].inputs;
            self.tag_buf.clear();
            self.tag_buf.extend(inputs[lo..hi].iter().map(|t| Tagged::new(lane, *t)));
            self.window.feed(&mut self.mux, &self.tag_buf, &mut self.stats);
            fed += hi - lo;
        }
        if n > 0 {
            self.rr = (self.rr + 1) % n;
        }
        if fed == 0 && self.window.in_flight() > 0 {
            self.window.drain_budgeted(&mut self.mux, &mut self.stats, self.cfg.drain_budget);
        }
        self.detect_failures();
        self.sweep_completed();
        fed
    }

    /// Drive every submitted query (and everything admitted from the
    /// pending queue along the way) to completion.
    pub fn run_to_completion(&mut self) {
        let _ = self.run_with_budget(usize::MAX);
    }

    /// [`run_to_completion`](ServeSession::run_to_completion) with a pump
    /// budget: give up after `max_pumps` rounds and return [`Stalled`]
    /// with queries still unfinished. Together with
    /// [`ServeConfig::drain_budget`] this bounds the work of a run even
    /// when a lane is wedged (a latch that never frees, an op that never
    /// progresses) — livelock becomes a value the caller can act on. The
    /// session stays valid: grant more budget or cancel the stragglers.
    pub fn run_with_budget(&mut self, max_pumps: usize) -> Result<(), Stalled> {
        let mut pumps = 0usize;
        while !self.active.is_empty() || !self.pending.is_empty() || !self.waiting.is_empty() {
            if pumps == max_pumps {
                return Err(Stalled {
                    pumps,
                    in_flight: self.window.in_flight(),
                    active: self.active.len(),
                });
            }
            pumps += 1;
            self.pump();
        }
        Ok(())
    }

    /// Closed-loop hint: pumps until the smallest active query should
    /// complete and free a lane.
    fn retry_hint(&self) -> usize {
        let q = self.cfg.quantum.max(1);
        self.active
            .iter()
            .map(|a| (a.inputs.len() - a.cursor) / (q * a.weight.max(1) as usize) + 2)
            .min()
            .unwrap_or(1)
    }

    /// Whether `tenant`'s breaker currently refuses full service (and
    /// perform the open → half-open transition when its probe timer
    /// expires: the triggering query becomes the health probe).
    fn breaker_tripped(&mut self, tenant: u32) -> bool {
        let pumps = self.pumps;
        let b = self.breakers.entry(tenant).or_default();
        match b.state {
            BreakerState::Closed => false,
            BreakerState::HalfOpen => true, // one probe at a time
            BreakerState::Open { probe_at } if pumps >= probe_at => {
                b.state = BreakerState::HalfOpen;
                false
            }
            BreakerState::Open { .. } => true,
        }
    }

    /// Is `tenant`'s breaker open or half-open (new queries shed or
    /// degraded, except the single health probe)?
    pub fn breaker_open(&self, tenant: u32) -> bool {
        matches!(
            self.breakers.get(&tenant).map(|b| b.state),
            Some(BreakerState::Open { .. }) | Some(BreakerState::HalfOpen)
        )
    }

    /// Fold one terminal outcome into the tenant's breaker.
    fn settle_breaker(&mut self, tenant: u32, outcome: QueryOutcome, degraded: bool) {
        let pumps = self.pumps;
        let probe_pumps = self.cfg.breaker_probe_pumps;
        let threshold = self.cfg.breaker_threshold.max(1);
        let b = self.breakers.entry(tenant).or_default();
        match outcome {
            // Only an *undegraded* completion proves the far tier works.
            QueryOutcome::Completed if !degraded => {
                b.fails = 0;
                b.state = BreakerState::Closed;
            }
            QueryOutcome::FailedAfterRetries => {
                b.fails += 1;
                let reopen = BreakerState::Open { probe_at: pumps + probe_pumps };
                match b.state {
                    BreakerState::HalfOpen => b.state = reopen,
                    _ if b.fails >= threshold => b.state = reopen,
                    _ => {}
                }
            }
            // Cancelled / deadline / shed / degraded completions carry no
            // evidence about tier health either way.
            _ => {}
        }
    }

    fn emit_shed(&mut self, qid: QueryId, req: &Request<'a>, tenant: u32, submitted: Instant) {
        self.trace.record(TraceEvent::shed(self.mux.sim_now(), qid.0));
        self.finished.push(QueryReport {
            qid,
            kind: kind_of(req),
            tuples: req.input_len() as u64,
            latency_ns: submitted.elapsed().as_nanos() as u64,
            outcome: QueryOutcome::Shed,
            attempts: 0,
            tenant,
            ..Default::default()
        });
    }

    fn emit_terminal(&mut self, seed: Attempt<'a>, outcome: QueryOutcome) {
        self.settle_breaker(seed.tenant, outcome, seed.degraded);
        let now = self.mux.sim_now();
        self.trace.record(TraceEvent::query(now, seed.qid.0, now, outcome.label()));
        self.finished.push(QueryReport {
            qid: seed.qid,
            kind: kind_of(&seed.req),
            tuples: seed.req.input_len() as u64,
            stats: seed.spent,
            latency_ns: seed.submitted.elapsed().as_nanos() as u64,
            outcome,
            attempts: seed.attempt,
            degraded: seed.degraded,
            tenant: seed.tenant,
            ..Default::default()
        });
    }

    /// Install one attempt on a fresh lane. Retries re-run the original
    /// request with the fault plan reseeded by the attempt index, so a
    /// retry re-rolls every fault decision instead of deterministically
    /// hitting the identical failure forever.
    fn activate(&mut self, seed: Attempt<'a>) {
        let Attempt {
            qid,
            req,
            weight,
            tenant,
            attempt,
            deadline_at,
            degraded,
            recovered,
            spent,
            submitted,
        } = seed;
        let mut effective = req.clone();
        if attempt > 0 {
            if let Request::Probe { cfg, .. } = &mut effective {
                if let Some(plan) = cfg.fault {
                    cfg.fault = Some(plan.reseeded(attempt));
                }
            }
        }
        let (mut op, inputs, kind): (TenantOp<'a>, &'a [Tuple], &'static str) = match effective {
            Request::Probe { probes, cfg } => (
                TenantOp::Probe(ProbeOp::new(self.catalog, &cfg, probes.len())),
                &probes.tuples,
                "probe",
            ),
            Request::GroupBy { input, table, cfg } => {
                (TenantOp::GroupBy(GroupByOp::new(table, &cfg)), &input.tuples, "groupby")
            }
            Request::Pipeline { fact, table, cfg } => (
                TenantOp::Pipeline(Box::new(fused_probe_groupby_op(self.catalog, table, &cfg))),
                &fact.tuples,
                "pipeline",
            ),
            Request::Upsert { input, cfg } => {
                (TenantOp::Upsert(MutateOp::new(self.catalog, &cfg)), &input.tuples, "upsert")
            }
        };
        if self.cfg.flight_recorder > 0 {
            let t = tenant.min(u32::from(u16::MAX)) as u16;
            op.set_tracer(Tracer::ring(self.cfg.flight_recorder).with_tenant(t));
        }
        let lane = self.mux.add(op);
        self.active.push(Active {
            qid,
            lane,
            kind,
            inputs,
            cursor: 0,
            deficit: 0,
            weight: weight.max(1),
            submitted,
            req,
            tenant,
            attempt,
            deadline_at,
            aborting: None,
            spent,
            degraded,
            recovered,
            born_at: self.mux.sim_now(),
        });
    }

    /// Cancel attempts whose sim-tick deadline has passed. The lane's
    /// in-flight lookups still retire cooperatively before the report is
    /// emitted, so the ledger stays exact.
    fn check_deadlines(&mut self) {
        let now = self.mux.sim_now();
        for i in 0..self.active.len() {
            let a = &self.active[i];
            if matches!(a.aborting, Some(Aborting::Final(_))) {
                continue;
            }
            let Some(d) = a.deadline_at else { continue };
            if now < d {
                continue;
            }
            let (lane, qid) = (a.lane, a.qid.0);
            self.mux.cancel(lane);
            // The deadline instant is the ring's final entry: the
            // cancelled lane's steps short-circuit inside the mux, so the
            // inner op records nothing after this.
            let op = self.mux.lane_mut(lane);
            if op.tracing() {
                op.trace(TraceEvent::deadline(now, qid));
            }
            self.trace.record(TraceEvent::deadline(now, qid));
            self.active[i].aborting = Some(Aborting::Final(QueryOutcome::DeadlineExceeded));
        }
    }

    /// Re-admit retries whose backoff expired (retries take lanes before
    /// brand-new pending queries). A retry whose deadline was consumed by
    /// the backoff itself reports `DeadlineExceeded` without re-entering
    /// the window.
    fn promote_waiting(&mut self) {
        let now = self.mux.sim_now();
        let mut i = 0;
        while i < self.waiting.len() {
            if self.active.len() >= self.cfg.max_active {
                return;
            }
            if self.waiting[i].not_before > now {
                i += 1;
                continue;
            }
            let w = self.waiting.remove(i);
            if w.seed.deadline_at.is_some_and(|d| now >= d) {
                self.emit_terminal(w.seed, QueryOutcome::DeadlineExceeded);
            } else {
                self.activate(w.seed);
            }
        }
    }

    /// A lane whose ledger shows a failed lookup is poisoned: cancel the
    /// attempt and decide retry vs terminal failure. Detection reads the
    /// per-lane ledger — live for lifecycle counters — so no failed
    /// lookup is ever silently dropped.
    fn detect_failures(&mut self) {
        for i in 0..self.active.len() {
            if self.active[i].aborting.is_some() {
                continue;
            }
            let lane = self.active[i].lane;
            if self.mux.observed(lane).failed_lookups == 0 {
                continue;
            }
            self.mux.cancel(lane);
            let a = &mut self.active[i];
            let retryable = matches!(a.req, Request::Probe { .. });
            a.aborting = Some(if retryable && a.attempt < self.cfg.max_retries {
                Aborting::Retry
            } else {
                Aborting::Final(QueryOutcome::FailedAfterRetries)
            });
        }
    }

    fn sweep_completed(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            let (retired, aborted) = {
                let a = &self.active[i];
                let led = self.mux.observed(a.lane);
                match a.aborting {
                    // Normal completion: all input fed and every lookup
                    // retired, proven by the lane ledger.
                    None => {
                        (a.cursor == a.inputs.len() && led.lookups >= a.inputs.len() as u64, false)
                    }
                    // Aborting: every *fed* lookup retired (completed,
                    // failed or cancelled — all count into `lookups`).
                    Some(_) => (led.lookups >= a.cursor as u64, true),
                }
            };
            if !retired {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            let (mut op, led) = self.mux.remove(a.lane);
            // Harvest the attempt's flight ring (disabled unless
            // `flight_recorder` is on); only failing outcomes keep it.
            let flight = op.take_tracer();
            // Mutation lanes surrender their WAL records whatever the
            // outcome: an aborted attempt's applied prefix is already in
            // the table, so it must be in the log too or replay diverges.
            if let TenantOp::Upsert(m) = &mut op {
                self.wal_buf.extend(m.drain_wal());
            }
            let mut stats = a.spent;
            stats.merge(&led);
            if aborted {
                match a.aborting.expect("aborted lane has a reason") {
                    Aborting::Retry => {
                        let shift = a.attempt.min(20);
                        let wait =
                            (self.cfg.backoff_base << shift).min(self.cfg.backoff_cap).max(1);
                        self.waiting.push(Waiting {
                            seed: Attempt {
                                qid: a.qid,
                                req: a.req,
                                weight: a.weight,
                                tenant: a.tenant,
                                attempt: a.attempt + 1,
                                deadline_at: a.deadline_at,
                                degraded: a.degraded,
                                recovered: a.recovered,
                                spent: stats,
                                submitted: a.submitted,
                            },
                            not_before: self.mux.sim_now() + wait,
                        });
                    }
                    Aborting::Final(outcome) => {
                        self.settle_breaker(a.tenant, outcome, a.degraded);
                        let now = self.mux.sim_now();
                        self.trace.record(TraceEvent::query(
                            a.born_at,
                            a.qid.0,
                            now,
                            outcome.label(),
                        ));
                        let flight = match outcome {
                            QueryOutcome::DeadlineExceeded | QueryOutcome::FailedAfterRetries => {
                                flight.into_events()
                            }
                            _ => Vec::new(),
                        };
                        self.finished.push(QueryReport {
                            qid: a.qid,
                            kind: a.kind,
                            tuples: a.inputs.len() as u64,
                            stats,
                            latency_ns: a.submitted.elapsed().as_nanos() as u64,
                            outcome,
                            attempts: a.attempt + 1,
                            degraded: a.degraded,
                            tenant: a.tenant,
                            flight,
                            ..Default::default()
                        });
                    }
                }
            } else {
                let outcome =
                    if a.recovered { QueryOutcome::Recovered } else { QueryOutcome::Completed };
                self.settle_breaker(a.tenant, QueryOutcome::Completed, a.degraded);
                let now = self.mux.sim_now();
                self.trace.record(TraceEvent::query(a.born_at, a.qid.0, now, outcome.label()));
                let latency_ns = a.submitted.elapsed().as_nanos() as u64;
                self.latency.record(latency_ns);
                if a.recovered {
                    // Both sides of the ledger invariant: the per-query
                    // report and the session's global stats.
                    stats.recovered_queries += 1;
                    self.stats.recovered_queries += 1;
                }
                let mut report = QueryReport {
                    qid: a.qid,
                    kind: a.kind,
                    tuples: a.inputs.len() as u64,
                    stats,
                    latency_ns,
                    outcome,
                    attempts: a.attempt + 1,
                    degraded: a.degraded,
                    tenant: a.tenant,
                    ..Default::default()
                };
                match op {
                    TenantOp::Probe(mut p) => {
                        report.matches = p.matches();
                        report.checksum = p.checksum();
                        report.out = p.take_out();
                    }
                    TenantOp::GroupBy(g) => report.matches = g.tuples(),
                    TenantOp::Pipeline(f) => {
                        report.matched = f.pipe().up().matches();
                        report.matches = f.pipe().down().inner().tuples();
                    }
                    TenantOp::Upsert(m) => report.matches = m.applied(),
                }
                self.finished.push(report);
            }
            self.promote_waiting();
            self.admit_from_pending();
        }
        if self.active.is_empty() {
            self.rr = 0;
        } else {
            self.rr %= self.active.len();
        }
    }

    fn admit_from_pending(&mut self) {
        while self.active.len() < self.cfg.max_active {
            match self.pending.pop_front() {
                Some(p) => {
                    let deadline_at = p.deadline_ticks.map(|d| self.mux.sim_now() + d);
                    self.activate(Attempt {
                        qid: p.qid,
                        req: p.req,
                        weight: p.weight,
                        tenant: p.tenant,
                        attempt: 0,
                        deadline_at,
                        degraded: p.degraded,
                        recovered: p.recovered,
                        spent: EngineStats::default(),
                        submitted: p.submitted,
                    });
                }
                None => break,
            }
        }
    }

    /// Queries currently sharing the window.
    pub fn active_queries(&self) -> usize {
        self.active.len()
    }

    /// Queries waiting for admission.
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Queries in retry backoff.
    pub fn waiting_queries(&self) -> usize {
        self.waiting.len()
    }

    /// Queries completed so far (any outcome).
    pub fn completed_queries(&self) -> usize {
        self.finished.len()
    }

    /// Queries refused at submission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Lookups currently in flight in the shared window.
    pub fn in_flight(&self) -> usize {
        self.window.in_flight()
    }

    /// Mean shared-window occupancy so far (deterministic).
    pub fn mean_occupancy(&self) -> f64 {
        self.window.mean_occupancy()
    }

    /// The session's simulated clock (the Mux's shared now) — what crash
    /// injection polls against a [`amac_tier::CrashPlan`] tick.
    pub fn sim_now(&self) -> u64 {
        self.mux.sim_now()
    }

    /// Install a session-level tracer. It records the serving-layer
    /// events no single lane op can see — query spans (activation →
    /// settle, labelled with the outcome), shed instants, deadline
    /// instants — keyed by the session's shared sim clock. Per-lookup
    /// events stay on the lane ops (see
    /// [`ServeConfig::flight_recorder`]). Tracing never touches the sim
    /// clock: reports and counters are bit-identical with or without it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.trace = tracer;
    }

    /// Remove and return the session tracer (also surrendered by
    /// [`finish`](ServeSession::finish) via [`ServeOutput::trace`]).
    pub fn take_trace(&mut self) -> Tracer {
        self.trace.take()
    }

    /// Take the WAL records surrendered by completed/aborted mutation
    /// lanes so far, in lane-retirement order. The caller owns
    /// persistence: append them to an [`amac_tier::Wal`] and seal at
    /// whatever group-commit boundary its durability contract wants.
    pub fn drain_wal(&mut self) -> Vec<WalRecord> {
        core::mem::take(&mut self.wal_buf)
    }

    /// Crash-recovery replay: re-apply a sealed WAL segment to the shared
    /// catalog **in record order** (baseline executor — replay must not
    /// interleave across records). Runs outside the serving window but
    /// inside the session's books: the replay counters merge into the
    /// global stats *and* a synthetic `"replay"` report (outcome
    /// [`QueryOutcome::Recovered`]) carries the same counters, so
    /// per-report ledgers still sum exactly to the session totals.
    pub fn recover_replay(&mut self, records: &[WalRecord]) -> EngineStats {
        let submitted = Instant::now();
        let mut op = ReplayOp::new(self.catalog);
        let stats = run(Technique::Baseline, &mut op, records, TuningParams::with_in_flight(1));
        self.stats.merge(&stats);
        let qid = QueryId(self.next_qid);
        self.next_qid += 1;
        self.finished.push(QueryReport {
            qid,
            kind: "replay",
            tuples: records.len() as u64,
            matches: stats.replayed_records,
            stats,
            latency_ns: submitted.elapsed().as_nanos() as u64,
            outcome: QueryOutcome::Recovered,
            attempts: 1,
            ..Default::default()
        });
        stats
    }

    /// Close the session: everything still active, backing off or pending
    /// is driven to completion, then the per-query reports and aggregate
    /// accounting are returned.
    pub fn finish(mut self) -> ServeOutput {
        self.run_to_completion();
        ServeOutput {
            occupancy: self.window.mean_occupancy(),
            window: self.window.capacity(),
            reports: self.finished,
            stats: self.stats,
            latency: self.latency,
            rejected: self.rejected,
            seconds: self.born.elapsed().as_secs_f64(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac::engine::Technique;
    use amac_hashtable::AggTable;
    use amac_ops::groupby::GroupByConfig;
    use amac_ops::join::ProbeConfig;
    use amac_ops::pipeline::{probe_then_groupby, PipelineConfig};
    use amac_tier::FaultPlan;
    use amac_workload::{FilterSpec, Relation};

    fn catalog(n: usize) -> (Relation, HashTable) {
        let dim = Relation::fk_dimension(n, (n as u64 / 4).max(4), 0xCA7);
        let ht = HashTable::build_serial(&dim);
        (dim, ht)
    }

    /// 8x over-occupied chained table: multi-hop lookups, so a fault plan
    /// has plenty of far chain loads to poison.
    fn chained_catalog(n: usize) -> (Relation, HashTable) {
        let r = Relation::dense_unique(n, 0xC4A1);
        let ht = HashTable::with_buckets(n / 8);
        {
            let mut h = ht.build_handle();
            for t in &r.tuples {
                h.insert(t.key, t.payload);
            }
        }
        (r, ht)
    }

    #[test]
    fn probe_queries_match_solo_results_including_order() {
        let (dim, ht) = catalog(4096);
        let q1 = Relation::fk_uniform(&dim, 10_000, 0x11);
        let q2 = Relation::zipf(10_000, 4096, 1.0, 0x12);
        let cfg = ProbeConfig::default(); // materializing, early-exit
        let solo1 = amac_ops::join::probe(&ht, &q1, Technique::Amac, &cfg);
        let solo2 = amac_ops::join::probe(&ht, &q2, Technique::Amac, &cfg);

        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let a = srv.submit(Request::Probe { probes: &q1, cfg: cfg.clone() }).unwrap();
        let b = srv.submit(Request::Probe { probes: &q2, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 2);
        let ra = out.reports.iter().find(|r| r.qid == a).unwrap();
        let rb = out.reports.iter().find(|r| r.qid == b).unwrap();
        assert_eq!(ra.outcome, QueryOutcome::Completed);
        assert_eq!(ra.attempts, 1);
        assert_eq!(ra.matches, solo1.matches);
        assert_eq!(ra.checksum, solo1.checksum);
        assert_eq!(ra.out, solo1.out, "materialized output reordered by sharing");
        assert_eq!(rb.matches, solo2.matches);
        assert_eq!(rb.checksum, solo2.checksum);
        assert_eq!(rb.out, solo2.out);
        assert_eq!(ra.stats.nodes_visited, solo1.stats.nodes_visited);
        assert_eq!(rb.stats.nodes_visited, solo2.stats.nodes_visited);
        assert_eq!(out.stats.lookups, 20_000);
    }

    #[test]
    fn groupby_and_pipeline_queries_share_one_window() {
        let (dim, ht) = catalog(2048);
        let gb_in = amac_workload::GroupByInput::zipf(64, 8_000, 0.9, 0x21).relation;
        let gb_table = AggTable::for_groups(64);
        let fact = Relation::fk_uniform(&dim, 8_000, 0x22);
        let pipe_table = AggTable::for_groups(512);
        let pipe_cfg =
            PipelineConfig { filter: Some(FilterSpec::selectivity(0.5)), ..Default::default() };

        // Solo references.
        let gb_solo = AggTable::for_groups(64);
        amac_ops::groupby::groupby(&gb_solo, &gb_in, Technique::Amac, &GroupByConfig::default());
        let pipe_solo = AggTable::for_groups(512);
        let ps = probe_then_groupby(&ht, &pipe_solo, &fact, Technique::Amac, &pipe_cfg);

        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 128, ..Default::default() });
        srv.submit(Request::GroupBy {
            input: &gb_in,
            table: &gb_table,
            cfg: GroupByConfig::default(),
        })
        .unwrap();
        srv.submit(Request::Pipeline { fact: &fact, table: &pipe_table, cfg: pipe_cfg }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 2);
        let gb = out.reports.iter().find(|r| r.kind == "groupby").unwrap();
        let pipe = out.reports.iter().find(|r| r.kind == "pipeline").unwrap();
        assert_eq!(gb.matches, 8_000);
        assert_eq!(pipe.matched, ps.matched);
        assert_eq!(pipe.matches, ps.aggregated);

        let snap = |t: &AggTable| {
            let mut g = t.groups();
            g.sort_by_key(|(k, _)| *k);
            g
        };
        assert_eq!(snap(&gb_table), snap(&gb_solo), "group-by aggregates diverge");
        assert_eq!(snap(&pipe_table), snap(&pipe_solo), "pipeline aggregates diverge");
    }

    #[test]
    fn admission_bounds_and_backpressure() {
        let (dim, ht) = catalog(256);
        let q = Relation::fk_uniform(&dim, 512, 0x31);
        let cfg = ServeConfig { max_active: 2, max_pending: 2, ..Default::default() };
        let mut srv = ServeSession::new(&ht, cfg);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        for _ in 0..4 {
            srv.submit(Request::Probe { probes: &q, cfg: pcfg.clone() }).unwrap();
        }
        assert_eq!(srv.active_queries(), 2);
        assert_eq!(srv.pending_queries(), 2);
        let err = srv
            .submit(Request::Probe { probes: &q, cfg: pcfg.clone() })
            .expect_err("5th query must hit backpressure");
        assert_eq!(err.max_pending, 2);
        assert!(err.retry_after_pumps >= 1, "hint must be actionable");
        assert_eq!(srv.rejected(), 1);
        // Closed-loop client: honoring the hint frees capacity.
        for _ in 0..err.retry_after_pumps {
            srv.pump();
        }
        srv.submit(Request::Probe { probes: &q, cfg: pcfg.clone() })
            .expect("capacity must free after the hinted number of pumps");
        let out = srv.finish();
        assert_eq!(out.reports.len(), 5);
        assert_eq!(out.rejected, 1);
        // Latency histogram has one observation per completed query.
        assert_eq!(out.latency.count(), 5);
        assert!(out.latency.quantile(0.99).is_some());
    }

    #[test]
    fn small_queries_keep_the_shared_window_fuller_than_private_windows() {
        let (dim, ht) = catalog(4096);
        // 16 small queries, each smaller than 4 windows' worth of input.
        let qs: Vec<Relation> =
            (0..16).map(|i| Relation::fk_uniform(&dim, 256, 0x40 + i)).collect();
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };

        // Private windows: one session per query (what per-query engines do).
        let mut private_occ = 0.0;
        for q in &qs {
            let mut srv = ServeSession::new(&ht, ServeConfig::default());
            srv.submit(Request::Probe { probes: q, cfg: pcfg.clone() }).unwrap();
            private_occ += srv.finish().occupancy;
        }
        private_occ /= qs.len() as f64;

        // Shared window: all 16 interleave.
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig { max_active: 16, quantum: 64, ..Default::default() },
        );
        for q in &qs {
            srv.submit(Request::Probe { probes: q, cfg: pcfg.clone() }).unwrap();
        }
        let out = srv.finish();
        assert_eq!(out.reports.len(), 16);
        assert!(
            out.occupancy > private_occ,
            "shared window occupancy {:.2} should beat per-query windows {:.2}",
            out.occupancy,
            private_occ
        );
        // And it should be near the full window.
        assert!(out.occupancy > 0.8 * out.window as f64, "occupancy {:.2}", out.occupancy);
    }

    #[test]
    fn weighted_query_finishes_earlier_under_contention() {
        let (dim, ht) = catalog(1024);
        let heavy = Relation::fk_uniform(&dim, 8_192, 0x51);
        let light = Relation::fk_uniform(&dim, 8_192, 0x52);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let w =
            srv.submit_weighted(Request::Probe { probes: &heavy, cfg: pcfg.clone() }, 4).unwrap();
        let l = srv.submit(Request::Probe { probes: &light, cfg: pcfg }).unwrap();
        let out = srv.finish();
        // Completion order: the weight-4 query got 4x the feed share, so it
        // must complete first even though both arrived together.
        assert_eq!(out.reports[0].qid, w);
        assert_eq!(out.reports[1].qid, l);
    }

    #[test]
    fn empty_query_completes_immediately() {
        let (_dim, ht) = catalog(64);
        let empty = Relation::default();
        let mut srv = ServeSession::new(&ht, ServeConfig::default());
        let q = srv.submit(Request::Probe { probes: &empty, cfg: ProbeConfig::default() }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].qid, q);
        assert_eq!(out.reports[0].matches, 0);
        assert_eq!(out.reports[0].stats.lookups, 0);
    }

    #[test]
    fn query_ids_are_unique_and_monotone_across_reuse() {
        let (dim, ht) = catalog(128);
        let q = Relation::fk_uniform(&dim, 64, 0x61);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { max_active: 1, ..Default::default() });
        let mut ids = Vec::new();
        for _ in 0..6 {
            ids.push(srv.submit(Request::Probe { probes: &q, cfg: pcfg.clone() }).unwrap());
            srv.run_to_completion();
        }
        let out = srv.finish();
        assert_eq!(out.reports.len(), 6);
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn faulted_probe_retries_and_recovers_bit_identically() {
        let (r, ht) = chained_catalog(1 << 12);
        // A small stream keeps the expected faults per attempt near 1:
        // the first attempt (very likely) hits one, and a reseeded retry
        // re-rolls every decision, so some attempt in the budget runs
        // clean. All of it is deterministic for this (seed, stream) pair.
        let s = Relation::fk_uniform(&r, 64, 0x71);
        let clean_cfg = ProbeConfig { scan_all: true, materialize: false, ..Default::default() };
        let clean = amac_ops::join::probe(&ht, &s, Technique::Amac, &clean_cfg);

        let fault_cfg =
            ProbeConfig { fault: Some(FaultPlan::fail_only(0xFA11, 8)), ..clean_cfg.clone() };
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig { max_retries: 16, backoff_base: 16, ..Default::default() },
        );
        let q = srv.submit(Request::Probe { probes: &s, cfg: fault_cfg }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 1);
        let rep = &out.reports[0];
        assert_eq!(rep.qid, q);
        assert_eq!(rep.outcome, QueryOutcome::Completed, "retry budget must recover");
        assert!(rep.attempts > 1, "first attempt must have faulted (got {})", rep.attempts);
        // Surviving results are bit-identical to the fault-free run.
        assert_eq!(rep.matches, clean.matches);
        assert_eq!(rep.checksum, clean.checksum);
        // The report charges the aborted attempts' work too, so per-query
        // stats still sum to the session's global counters.
        assert!(rep.stats.failed_lookups > 0);
        assert_eq!(rep.stats.lookups, out.stats.lookups);
        assert_eq!(rep.stats.load_faults, out.stats.load_faults);
        assert_eq!(out.retries(), (rep.attempts - 1) as u64);
    }

    #[test]
    fn deadline_exceeded_is_reported_and_the_lane_drains_clean() {
        let (dim, ht) = catalog(1024);
        let big = Relation::fk_uniform(&dim, 50_000, 0x81);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let q = srv
            .submit_opts(
                Request::Probe { probes: &big, cfg: pcfg.clone() },
                SubmitOpts { deadline_ticks: Some(1), ..Default::default() },
            )
            .unwrap();
        let ok = srv.submit(Request::Probe { probes: &big, cfg: pcfg }).unwrap();
        let out = srv.finish();
        assert_eq!(out.reports.len(), 2);
        let missed = out.reports.iter().find(|r| r.qid == q).unwrap();
        let fine = out.reports.iter().find(|r| r.qid == ok).unwrap();
        assert_eq!(missed.outcome, QueryOutcome::DeadlineExceeded);
        assert!(missed.out.is_empty(), "no results for a missed deadline");
        assert_eq!(fine.outcome, QueryOutcome::Completed);
        // Ledger exactness: every fed lookup of the cancelled lane retired
        // (completed or cancelled — both inside `lookups`), and per-query
        // stats sum to the global counters.
        assert!(missed.stats.lookups >= missed.stats.cancelled_lookups);
        let mut sum = EngineStats::default();
        for r in &out.reports {
            sum.merge(&r.stats);
        }
        assert_eq!(sum, out.stats, "per-query ledgers must sum to global stats");
    }

    #[test]
    fn cancel_reaps_active_and_pending_queries() {
        let (dim, ht) = catalog(1024);
        let big = Relation::fk_uniform(&dim, 20_000, 0x91);
        let small = Relation::fk_uniform(&dim, 1_000, 0x92);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let solo = amac_ops::join::probe(&ht, &small, Technique::Amac, &pcfg);
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig { max_active: 2, quantum: 64, ..Default::default() },
        );
        let doomed = srv.submit(Request::Probe { probes: &big, cfg: pcfg.clone() }).unwrap();
        let kept = srv.submit(Request::Probe { probes: &small, cfg: pcfg.clone() }).unwrap();
        let queued = srv.submit(Request::Probe { probes: &big, cfg: pcfg.clone() }).unwrap();
        srv.pump();
        assert!(srv.cancel(doomed), "active query");
        assert!(srv.cancel(queued), "pending query");
        assert!(!srv.cancel(QueryId(999)), "unknown id");
        let out = srv.finish();
        assert_eq!(out.reports.len(), 3, "one report per submitted query, none lost");
        let d = out.reports.iter().find(|r| r.qid == doomed).unwrap();
        let k = out.reports.iter().find(|r| r.qid == kept).unwrap();
        let p = out.reports.iter().find(|r| r.qid == queued).unwrap();
        assert_eq!(d.outcome, QueryOutcome::Cancelled);
        assert_eq!(p.outcome, QueryOutcome::Cancelled);
        assert_eq!(p.attempts, 0, "cancelled before any attempt ran");
        // The surviving query is untouched by its neighbor's cancellation.
        assert_eq!(k.outcome, QueryOutcome::Completed);
        assert_eq!(k.matches, solo.matches);
        assert_eq!(k.checksum, solo.checksum);
        assert_eq!(k.stats.nodes_visited, solo.stats.nodes_visited);
        let mut sum = EngineStats::default();
        for r in &out.reports {
            sum.merge(&r.stats);
        }
        assert_eq!(sum, out.stats);
    }

    #[test]
    fn breaker_sheds_after_consecutive_failures_and_half_opens() {
        let (r, ht) = chained_catalog(1 << 12);
        let s = Relation::fk_uniform(&r, 2_000, 0xA1);
        // Every chain hop fails: no retry budget can save these queries.
        let cfg = ProbeConfig {
            scan_all: true,
            materialize: false,
            fault: Some(FaultPlan::fail_only(0xDEAD, 1000)),
            ..Default::default()
        };
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig {
                max_retries: 0,
                breaker_threshold: 2,
                breaker_mode: BreakerMode::Shed,
                breaker_probe_pumps: 4,
                ..Default::default()
            },
        );
        for _ in 0..2 {
            srv.submit(Request::Probe { probes: &s, cfg: cfg.clone() }).unwrap();
            srv.run_to_completion();
        }
        assert!(srv.breaker_open(0), "two consecutive failures must open the breaker");
        let shed_q = srv.submit(Request::Probe { probes: &s, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();
        // After the probe timer, one query is let through (and fails,
        // re-opening the breaker).
        for _ in 0..8 {
            srv.pump();
        }
        let probe_q = srv.submit(Request::Probe { probes: &s, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();
        assert!(srv.breaker_open(0), "failed health probe must re-open the breaker");
        let out = srv.finish();
        assert_eq!(out.count(QueryOutcome::FailedAfterRetries), 3);
        assert_eq!(out.count(QueryOutcome::Shed), 1);
        let shed = out.reports.iter().find(|r| r.qid == shed_q).unwrap();
        assert_eq!(shed.outcome, QueryOutcome::Shed);
        assert_eq!(shed.attempts, 0);
        assert_eq!(shed.stats, EngineStats::default(), "shed queries do no work");
        let probe = out.reports.iter().find(|r| r.qid == probe_q).unwrap();
        assert_eq!(probe.outcome, QueryOutcome::FailedAfterRetries);
    }

    #[test]
    fn breaker_degrade_serves_probe_near_and_pipeline_two_phase() {
        let (r, ht) = chained_catalog(1 << 12);
        let s = Relation::fk_uniform(&r, 2_000, 0xB1);
        let clean_cfg = ProbeConfig { scan_all: true, materialize: false, ..Default::default() };
        let clean = amac_ops::join::probe(&ht, &s, Technique::Amac, &clean_cfg);
        let all_fail = Some(FaultPlan::fail_only(0xB00, 1000));
        let cfg = ProbeConfig { fault: all_fail, ..clean_cfg.clone() };
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig {
                max_retries: 0,
                breaker_threshold: 1,
                breaker_mode: BreakerMode::Degrade,
                breaker_probe_pumps: 1_000_000, // stay open for the test
                ..Default::default()
            },
        );
        srv.submit(Request::Probe { probes: &s, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();
        assert!(srv.breaker_open(0));

        // Degraded probe: one rung down (headers-near → all-near), which
        // sidesteps far faults entirely; results stay exact.
        let dq = srv.submit(Request::Probe { probes: &s, cfg: cfg.clone() }).unwrap();
        srv.run_to_completion();

        // Degraded pipeline: two-phase fault-free fallback, synchronous.
        let fact = Relation::fk_uniform(&r, 2_000, 0xB2);
        let table = AggTable::for_groups(512);
        let solo_table = AggTable::for_groups(512);
        let pcfg = PipelineConfig {
            filter: Some(FilterSpec::selectivity(0.5)),
            fault: Some(FaultPlan::fail_only(0xB01, 1000)),
            ..Default::default()
        };
        let solo_cfg = PipelineConfig { fault: None, ..pcfg.clone() };
        let solo = probe_then_groupby(&ht, &solo_table, &fact, Technique::Amac, &solo_cfg);
        let pq = srv.submit(Request::Pipeline { fact: &fact, table: &table, cfg: pcfg }).unwrap();
        let out = srv.finish();
        let d = out.reports.iter().find(|r| r.qid == dq).unwrap();
        assert_eq!(d.outcome, QueryOutcome::Completed);
        assert!(d.degraded, "served by the degraded plan");
        assert_eq!(d.attempts, 1, "the near plan cannot fault");
        assert_eq!(d.matches, clean.matches, "degraded results stay exact");
        assert_eq!(d.checksum, clean.checksum);
        let p = out.reports.iter().find(|r| r.qid == pq).unwrap();
        assert_eq!(p.outcome, QueryOutcome::Completed);
        assert!(p.degraded);
        assert_eq!(p.matched, solo.matched);
        assert_eq!(p.matches, solo.aggregated);
        let snap = |t: &AggTable| {
            let mut g = t.groups();
            g.sort_by_key(|(k, _)| *k);
            g
        };
        assert_eq!(snap(&table), snap(&solo_table), "two-phase fallback aggregates diverge");
        let mut sum = EngineStats::default();
        for rep in &out.reports {
            sum.merge(&rep.stats);
        }
        assert_eq!(sum, out.stats, "degraded paths still keep ledgers exact");
    }

    #[test]
    fn run_with_budget_reports_stalled_and_can_resume() {
        let (dim, ht) = catalog(1024);
        let big = Relation::fk_uniform(&dim, 100_000, 0xC1);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        srv.submit(Request::Probe { probes: &big, cfg: pcfg }).unwrap();
        let err = srv.run_with_budget(3).expect_err("3 pumps cannot finish 100k tuples");
        assert_eq!(err.pumps, 3);
        assert_eq!(err.active, 1);
        // The session survives a stall verdict: more budget finishes it.
        srv.run_with_budget(usize::MAX).expect("unbounded budget completes");
        let out = srv.finish();
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].outcome, QueryOutcome::Completed);
    }

    #[test]
    fn upsert_queries_mutate_the_catalog_and_log_durably() {
        use amac_hashtable::HashTable;
        use amac_ops::mutate::MutateConfig;

        let (_r, ht) = catalog(2048);
        ht.freeze();
        let checkpoint = ht.snapshot();
        let probes = Relation::zipf(4_000, 2048, 0.8, 0xE1);
        let ups = Relation::zipf(3_000, 3_000, 0.6, 0xE2);

        // Solo reference: same mutations against a restored twin.
        let twin = HashTable::restore(&checkpoint);
        let solo = amac_ops::mutate::mutate(&twin, &ups, Technique::Amac, &MutateConfig::default());

        let mut srv = ServeSession::new(&ht, ServeConfig { quantum: 64, ..Default::default() });
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        srv.submit(Request::Probe { probes: &probes, cfg: pcfg }).unwrap();
        let uq = srv.submit(Request::Upsert { input: &ups, cfg: MutateConfig::default() }).unwrap();
        srv.run_to_completion();
        let wal = srv.drain_wal();
        let out = srv.finish();
        let u = out.reports.iter().find(|r| r.qid == uq).unwrap();
        assert_eq!(u.outcome, QueryOutcome::Completed);
        assert_eq!(u.kind, "upsert");
        assert_eq!(u.matches, ups.len() as u64, "every mutation applied");
        assert_eq!(wal.len(), ups.len(), "every applied mutation logged");
        assert!(u.stats.log_bytes > 0 && u.stats.log_stalls > 0);
        // Sharing the window changes nothing about the table contents.
        assert_eq!(ht.contents_sorted(), twin.contents_sorted());
        // WAL-record multiset matches the solo run's (same mutations).
        let sortkey = |r: &amac_tier::WalRecord| (r.key(), r.encode());
        let mut a = wal.clone();
        let mut b = solo.wal.clone();
        a.sort_by_key(sortkey);
        b.sort_by_key(sortkey);
        assert_eq!(a, b);
        let mut sum = EngineStats::default();
        for r in &out.reports {
            sum.merge(&r.stats);
        }
        assert_eq!(sum, out.stats, "mutation lanes keep ledgers exact");
    }

    #[test]
    fn recover_replay_rebuilds_the_catalog_and_keeps_books() {
        use amac_hashtable::HashTable;
        use amac_ops::mutate::MutateConfig;

        let (_r, ht) = catalog(1024);
        ht.freeze();
        let checkpoint = ht.snapshot();
        let ups = Relation::zipf(2_000, 1_500, 0.6, 0xF1);
        let mut srv = ServeSession::new(&ht, ServeConfig::default());
        srv.submit(Request::Upsert { input: &ups, cfg: MutateConfig::default() }).unwrap();
        srv.run_to_completion();
        let wal = srv.drain_wal();
        drop(srv.finish());

        // Crash: a fresh session over the restored checkpoint replays the
        // log, then serves a recovered re-run of a lost query.
        let back = HashTable::restore(&checkpoint);
        let mut srv2 = ServeSession::new(&back, ServeConfig::default());
        let stats = srv2.recover_replay(&wal);
        assert_eq!(stats.replayed_records, wal.len() as u64);
        assert_eq!(back.contents_sorted(), ht.contents_sorted(), "replay rebuilds the table");
        let probes = Relation::zipf(500, 1024, 0.9, 0xF2);
        let pcfg = ProbeConfig { materialize: false, ..Default::default() };
        let rq = srv2
            .submit_opts(
                Request::Probe { probes: &probes, cfg: pcfg },
                SubmitOpts { recovered: true, ..Default::default() },
            )
            .unwrap();
        let out = srv2.finish();
        assert_eq!(out.count(QueryOutcome::Recovered), 2, "replay report + recovered re-run");
        let r = out.reports.iter().find(|rep| rep.qid == rq).unwrap();
        assert_eq!(r.outcome, QueryOutcome::Recovered);
        assert_eq!(r.stats.recovered_queries, 1);
        assert_eq!(out.stats.recovered_queries, 1);
        assert_eq!(out.stats.replayed_records, wal.len() as u64);
        let mut sum = EngineStats::default();
        for rep in &out.reports {
            sum.merge(&rep.stats);
        }
        assert_eq!(sum, out.stats, "replay + recovered lanes keep ledgers exact");
    }

    #[test]
    fn backoff_is_charged_to_the_sim_clock() {
        let (r, ht) = chained_catalog(1 << 12);
        let s = Relation::fk_uniform(&r, 1_000, 0xD1);
        let cfg = ProbeConfig {
            scan_all: true,
            materialize: false,
            fault: Some(FaultPlan::fail_only(0xD0, 2)),
            ..Default::default()
        };
        // A deadline shorter than one backoff: if the first attempt
        // faults, the backoff alone must burn the deadline.
        let mut srv = ServeSession::new(
            &ht,
            ServeConfig {
                max_retries: 8,
                backoff_base: 1 << 40,
                backoff_cap: 1 << 40,
                ..Default::default()
            },
        );
        let q = srv
            .submit_opts(
                Request::Probe { probes: &s, cfg },
                SubmitOpts { deadline_ticks: Some(1 << 30), ..Default::default() },
            )
            .unwrap();
        let out = srv.finish();
        let rep = out.reports.iter().find(|r| r.qid == q).unwrap();
        assert_eq!(
            rep.outcome,
            QueryOutcome::DeadlineExceeded,
            "a huge backoff must consume a smaller deadline deterministically"
        );
        assert_eq!(rep.attempts, 1, "the retry never re-entered the window");
    }
}
