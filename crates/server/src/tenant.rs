//! One op type for every request kind, so heterogeneous queries can
//! share a single [`Mux`](amac::engine::mux::Mux) window.
//!
//! The multiplexer is generic over *one* inner op type; the serving
//! layer's queries are probes, group-bys and fused pipelines. [`TenantOp`]
//! is the sum type that unifies them: each variant delegates the
//! [`LookupOp`] contract to the wrapped operator, and the state enum
//! mirrors it. `start` fully reinitializes the state (writing the variant
//! matching the op), so a window slot can be handed from a probe query to
//! a pipeline query and back as lanes are recycled.

use amac::engine::pipeline::ChainState;
use amac::engine::{EngineStats, LookupOp, Step};
use amac_ops::groupby::{GroupByOp, GroupByState};
use amac_ops::join::{ProbeOp, ProbeState};
use amac_ops::mutate::{MutState, MutateOp};
use amac_ops::pipeline::{FusedProbeGroupBy, ProbePipeState};
use amac_workload::Tuple;

/// State of one in-flight serving lookup (variant always matches the
/// owning lane's op; `Vacant` only before the first `start`).
#[derive(Default)]
pub enum TenantState {
    /// Slot not yet started.
    #[default]
    Vacant,
    /// In-flight probe.
    Probe(ProbeState),
    /// In-flight group-by update.
    GroupBy(GroupByState),
    /// In-flight fused probe → filter → group-by chain.
    Pipeline(ChainState<ProbePipeState, GroupByState>),
    /// In-flight latch-free catalog mutation.
    Upsert(MutState),
}

/// One query's operator, in a form every other query's operator can share
/// a window with.
pub enum TenantOp<'a> {
    /// Hash-join probe against the catalog table.
    Probe(ProbeOp<'a>),
    /// Group-by into the query's own table.
    GroupBy(GroupByOp<'a>),
    /// Fused probe → filter → group-by (boxed: the fused chain state
    /// machine is much larger than the other variants).
    Pipeline(Box<FusedProbeGroupBy<'a>>),
    /// Latch-free mutation of the shared catalog table (WAL-logged).
    Upsert(MutateOp<'a>),
}

impl LookupOp for TenantOp<'_> {
    type Input = Tuple;
    type State = TenantState;

    fn budgeted_steps(&self) -> usize {
        match self {
            TenantOp::Probe(op) => op.budgeted_steps(),
            TenantOp::GroupBy(op) => op.budgeted_steps(),
            TenantOp::Pipeline(op) => op.budgeted_steps(),
            TenantOp::Upsert(op) => op.budgeted_steps(),
        }
    }

    fn start(&mut self, input: Tuple, state: &mut TenantState) {
        match self {
            TenantOp::Probe(op) => {
                let mut s = ProbeState::default();
                op.start(input, &mut s);
                *state = TenantState::Probe(s);
            }
            TenantOp::GroupBy(op) => {
                let mut s = GroupByState::default();
                op.start(input, &mut s);
                *state = TenantState::GroupBy(s);
            }
            TenantOp::Pipeline(op) => {
                let mut s = ChainState::default();
                op.start(input, &mut s);
                *state = TenantState::Pipeline(s);
            }
            TenantOp::Upsert(op) => {
                let mut s = MutState::default();
                op.start(input, &mut s);
                *state = TenantState::Upsert(s);
            }
        }
    }

    fn step(&mut self, state: &mut TenantState) -> Step {
        match (self, state) {
            (TenantOp::Probe(op), TenantState::Probe(s)) => op.step(s),
            (TenantOp::GroupBy(op), TenantState::GroupBy(s)) => op.step(s),
            (TenantOp::Pipeline(op), TenantState::Pipeline(s)) => op.step(s),
            (TenantOp::Upsert(op), TenantState::Upsert(s)) => op.step(s),
            _ => unreachable!("serving state variant does not match its lane's op"),
        }
    }

    fn issues_prefetches(&self) -> bool {
        match self {
            TenantOp::Probe(op) => op.issues_prefetches(),
            TenantOp::GroupBy(op) => op.issues_prefetches(),
            TenantOp::Pipeline(op) => op.issues_prefetches(),
            TenantOp::Upsert(op) => op.issues_prefetches(),
        }
    }

    fn flush_observed(&mut self, stats: &mut EngineStats) {
        match self {
            TenantOp::Probe(op) => op.flush_observed(stats),
            TenantOp::GroupBy(op) => op.flush_observed(stats),
            TenantOp::Pipeline(op) => op.flush_observed(stats),
            TenantOp::Upsert(op) => op.flush_observed(stats),
        }
    }

    fn sim_idle(&mut self, ticks: u64) {
        match self {
            TenantOp::Probe(op) => op.sim_idle(ticks),
            TenantOp::GroupBy(op) => op.sim_idle(ticks),
            TenantOp::Pipeline(op) => op.sim_idle(ticks),
            TenantOp::Upsert(op) => op.sim_idle(ticks),
        }
    }

    fn sim_now(&self) -> u64 {
        match self {
            TenantOp::Probe(op) => op.sim_now(),
            TenantOp::GroupBy(op) => op.sim_now(),
            TenantOp::Pipeline(op) => op.sim_now(),
            TenantOp::Upsert(op) => op.sim_now(),
        }
    }

    fn sim_advance_to(&mut self, now: u64) {
        match self {
            TenantOp::Probe(op) => op.sim_advance_to(now),
            TenantOp::GroupBy(op) => op.sim_advance_to(now),
            TenantOp::Pipeline(op) => op.sim_advance_to(now),
            TenantOp::Upsert(op) => op.sim_advance_to(now),
        }
    }

    fn commit_point(&mut self) {
        match self {
            TenantOp::Probe(op) => op.commit_point(),
            TenantOp::GroupBy(op) => op.commit_point(),
            TenantOp::Pipeline(op) => op.commit_point(),
            TenantOp::Upsert(op) => op.commit_point(),
        }
    }

    fn set_tracer(&mut self, tracer: amac_trace::Tracer) {
        match self {
            TenantOp::Probe(op) => op.set_tracer(tracer),
            TenantOp::GroupBy(op) => op.set_tracer(tracer),
            TenantOp::Pipeline(op) => op.set_tracer(tracer),
            TenantOp::Upsert(op) => op.set_tracer(tracer),
        }
    }

    fn take_tracer(&mut self) -> amac_trace::Tracer {
        match self {
            TenantOp::Probe(op) => op.take_tracer(),
            TenantOp::GroupBy(op) => op.take_tracer(),
            TenantOp::Pipeline(op) => op.take_tracer(),
            TenantOp::Upsert(op) => op.take_tracer(),
        }
    }

    fn tracing(&self) -> bool {
        match self {
            TenantOp::Probe(op) => op.tracing(),
            TenantOp::GroupBy(op) => op.tracing(),
            TenantOp::Pipeline(op) => op.tracing(),
            TenantOp::Upsert(op) => op.tracing(),
        }
    }

    fn trace(&mut self, ev: amac_trace::TraceEvent) {
        match self {
            TenantOp::Probe(op) => op.trace(ev),
            TenantOp::GroupBy(op) => op.trace(ev),
            TenantOp::Pipeline(op) => op.trace(ev),
            TenantOp::Upsert(op) => op.trace(ev),
        }
    }
}
