//! Property tests for the `u32`-indexed arena: index ↔ pointer
//! round-trips, non-aliasing of live allocations, and equivalence of
//! index-linked chains with pointer-linked chains under 1/2/4 threads.

use amac_mem::arena::{Arena, IndexedArena, NULL_INDEX};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indices_roundtrip_and_never_alias(n in 1usize..3000) {
        let a = IndexedArena::<u64>::new();
        let mut seen = HashSet::new();
        for i in 0..n {
            let (idx, ptr) = a.alloc();
            // idx -> ptr -> idx round-trip.
            prop_assert_eq!(a.get(idx), ptr);
            prop_assert_eq!(a.index_of(ptr), Some(idx));
            prop_assert!(seen.insert(ptr as usize), "allocation {} aliased", i);
            unsafe { *ptr = idx as u64 };
        }
        // Earlier writes survive later slab growth: no overlap anywhere.
        for idx in 0..n as u32 {
            prop_assert_eq!(unsafe { *a.get(idx) }, idx as u64);
        }
        prop_assert_eq!(a.len(), n);
    }

    #[test]
    fn index_chains_equal_pointer_chains(
        lists in prop::collection::vec(prop::collection::vec(0u64..1000, 1..40), 1..20),
        threads in 1usize..5,
    ) {
        // Build the same set of singly-linked lists twice — nodes from a
        // pointer arena and nodes from the shared indexed arena (the
        // latter split across 1/2/4 threads) — and require bit-identical
        // traversals.
        #[derive(Default)]
        struct PtrNode {
            val: u64,
            next: *mut PtrNode,
        }
        #[derive(Default)]
        struct IdxNode {
            val: u64,
            next: u32,
        }

        // Pointer-linked reference, single-threaded.
        let mut parena = Arena::<PtrNode>::new();
        let mut pheads = Vec::new();
        for list in &lists {
            let mut head: *mut PtrNode = core::ptr::null_mut();
            for &v in list.iter().rev() {
                let node = parena.alloc();
                unsafe {
                    (*node).val = v;
                    (*node).next = head;
                }
                head = node;
            }
            pheads.push(head);
        }

        // Index-linked build: lists are distributed over worker threads,
        // all allocating from one shared arena.
        let iarena = IndexedArena::<IdxNode>::new();
        let chunk = lists.len().div_ceil(threads);
        let iheads: Vec<u32> = std::thread::scope(|s| {
            let handles: Vec<_> = lists
                .chunks(chunk)
                .map(|chunk_lists| {
                    let iarena = &iarena;
                    s.spawn(move || {
                        chunk_lists
                            .iter()
                            .map(|list| {
                                let mut head = NULL_INDEX;
                                for &v in list.iter().rev() {
                                    let (idx, node) = iarena.alloc();
                                    unsafe {
                                        (*node).val = v;
                                        (*node).next = head;
                                    }
                                    head = idx;
                                }
                                head
                            })
                            .collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker")).collect()
        });

        // Traversals must agree value-for-value.
        for (li, (&ph, &ih)) in pheads.iter().zip(&iheads).enumerate() {
            let mut want = Vec::new();
            let mut p = ph;
            while !p.is_null() {
                unsafe {
                    want.push((*p).val);
                    p = (*p).next;
                }
            }
            let mut got = Vec::new();
            let mut i = ih;
            while i != NULL_INDEX {
                let node = iarena.get(i);
                // Every link also round-trips through index_of.
                prop_assert_eq!(iarena.index_of(node), Some(i));
                unsafe {
                    got.push((*node).val);
                    i = (*node).next;
                }
            }
            prop_assert_eq!(&got, &want, "list {} diverges", li);
        }
    }
}
