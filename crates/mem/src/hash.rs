//! Integer hashing for bucket addressing.
//!
//! Balkesen's no-partitioning join hashes dense integer keys with a simple
//! mask. Our workloads also include Zipf-skewed and sparse key domains, so
//! we run keys through the splitmix64 finalizer first and then mask. The
//! property that matters for reproducing the paper holds either way:
//! *identical keys always collide into the same bucket*, so a skewed build
//! relation yields long chains in the hot buckets (§2.2.2, §5.1).

/// The splitmix64 finalizer — a full-avalanche 64-bit mixer.
///
/// Bijective on `u64`, so it cannot introduce collisions of its own.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bucket index for `key` in a table of `mask + 1` (power-of-two) buckets.
#[inline(always)]
pub fn bucket_of(key: u64, mask: u64) -> u64 {
    mix64(key) & mask
}

/// Per-slot fingerprint ("tag") for `key` in a tag-probed bucket.
///
/// Derived from the **high** byte of the same splitmix64 mix that
/// [`bucket_of`] masks the *low* bits of, so within one bucket the tag
/// carries 7 hash bits the bucket index did not consume. The top bit is
/// forced to 1 so a valid tag can never equal 0 — the empty-slot marker —
/// which is what lets the SWAR zero-byte test reject unoccupied lanes for
/// free (see `amac_hashtable::bucket`). 128 distinct values ⇒ a non-match
/// survives the tag filter with probability 1/128 per occupied slot.
#[inline(always)]
pub fn tag_of(key: u64) -> u8 {
    ((mix64(key) >> 56) as u8) | 0x80
}

/// Exact inverse of [`mix64`]: `unmix64(mix64(x)) == x` for all `x`.
///
/// Used by the Figure 3 workload generator to *construct* keys that land
/// in chosen buckets (the paper's "each hash table bucket contains exactly
/// four nodes" layout), which requires inverting the hash.
#[inline]
pub fn unmix64(mut z: u64) -> u64 {
    // Invert z ^= z >> 31 (shift < 32 needs the second term).
    z ^= (z >> 31) ^ (z >> 62);
    // Invert multiplication by 0x94D049BB133111EB.
    z = z.wrapping_mul(0x319642B2D24D8EC3);
    // Invert z ^= z >> 27.
    z ^= (z >> 27) ^ (z >> 54);
    // Invert multiplication by 0xBF58476D1CE4E5B9.
    z = z.wrapping_mul(0x96DE1B173F119089);
    // Invert z ^= z >> 30.
    z ^= (z >> 30) ^ (z >> 60);
    // Invert the golden-ratio increment.
    z.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// Round `n` up to the next power of two (min 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        // Bijectivity can't be exhausted; spot-check a large sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let mask = 255u64;
        let mut counts = [0u32; 256];
        let n = 1_000_000u64;
        for k in 0..n {
            counts[bucket_of(k, mask) as usize] += 1;
        }
        let expected = (n / 256) as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "bucket {b} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn identical_keys_always_collide() {
        let mask = 1023;
        for k in [0u64, 17, u64::MAX, 123_456_789] {
            assert_eq!(bucket_of(k, mask), bucket_of(k, mask));
        }
    }

    #[test]
    fn unmix_inverts_mix_on_sample() {
        for x in [0u64, 1, 42, u64::MAX, 0x9E37_79B9_7F4A_7C15, 1 << 63] {
            assert_eq!(unmix64(mix64(x)), x, "unmix∘mix at {x}");
            assert_eq!(mix64(unmix64(x)), x, "mix∘unmix at {x}");
        }
        let mut v = 0x1234_5678_u64;
        for _ in 0..10_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            assert_eq!(unmix64(mix64(v)), v);
        }
    }

    #[test]
    fn unmix_constructs_keys_for_target_buckets() {
        // The Fig. 3 generator use case: keys that hash into bucket b.
        let mask = 1023u64;
        for b in [0u64, 1, 511, 1023] {
            for j in 0..8u64 {
                let key = unmix64(b | (j << 10));
                assert_eq!(bucket_of(key, mask), b);
            }
        }
    }

    #[test]
    fn tags_are_nonzero_and_spread() {
        let mut counts = [0u32; 256];
        for k in 0..100_000u64 {
            let t = tag_of(k);
            assert!(t & 0x80 != 0, "tag high bit must be set (nonzero marker)");
            counts[t as usize] += 1;
        }
        // Only the 128 high-bit values occur, roughly uniformly.
        assert!(counts[..128].iter().all(|&c| c == 0));
        let expected = 100_000.0 / 128.0;
        for (t, &c) in counts[128..].iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "tag {t} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn next_pow2_edge_cases() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1 << 20), 1 << 20);
        assert_eq!(next_pow2((1 << 20) + 1), 1 << 21);
    }
}
