//! Software prefetch intrinsics.
//!
//! The paper uses `PREFETCHNTA` on x86 (via gcc built-ins) and the SPARC
//! "strong" prefetch variant. On stable Rust the x86 family is exposed
//! through [`core::arch::x86_64::_mm_prefetch`]. On other architectures the
//! functions compile to nothing, so the executors remain portable (they just
//! degrade to the no-prefetch baseline behaviour).
//!
//! Prefetching is always safe in the ISA sense — the instruction is a hint
//! and never faults — but Rust's intrinsic takes a raw pointer, so the
//! wrappers here accept `*const T` and are safe to call with any address,
//! including dangling ones.

/// Issue a non-temporal prefetch (`PREFETCHNTA`) for the cache line
/// containing `ptr`.
///
/// This is the variant used throughout the paper's x86 experiments: the line
/// is fetched close to the core while minimizing pollution of the outer
/// cache levels, which is the right trade-off for pointer chains that are
/// visited exactly once per lookup.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_NTA }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Issue a temporal prefetch (`PREFETCHT0`) for the cache line containing
/// `ptr`, pulling it into every cache level.
///
/// Exposed so the benchmark harness can compare hint policies (an ablation
/// the paper alludes to when discussing the SPARC strong prefetch variant).
#[inline(always)]
pub fn prefetch_read_t0<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Prefetch with intent to write.
///
/// x86 has `PREFETCHW`; `_mm_prefetch` with the `ET0` hint is only available
/// behind unstable features, so we use `T0` which is close enough for the
/// latched build/insert paths (the line is brought in exclusive-adjacent
/// state by the subsequent locked instruction anyway).
#[inline(always)]
pub fn prefetch_write<T>(ptr: *const T) {
    prefetch_read_t0(ptr);
}

/// Which prefetch instruction an executor should issue.
///
/// The paper fixes `PREFETCHNTA` on x86; the harness exposes the policy so
/// the choice can be benchmarked (see `bench/bin/ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchHint {
    /// Non-temporal (`PREFETCHNTA`) — the paper's choice.
    #[default]
    Nta,
    /// All-levels temporal (`PREFETCHT0`).
    T0,
    /// Do not prefetch at all (turns any executor into a pure interleaving
    /// scheme; useful to separate interleaving benefit from prefetch
    /// benefit).
    None,
}

impl PrefetchHint {
    /// Issue a prefetch for `ptr` according to the policy.
    #[inline(always)]
    pub fn issue<T>(self, ptr: *const T) {
        match self {
            PrefetchHint::Nta => prefetch_read(ptr),
            PrefetchHint::T0 => prefetch_read_t0(ptr),
            PrefetchHint::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_valid_address_is_noop_semantically() {
        let x = 42u64;
        prefetch_read(&x);
        prefetch_read_t0(&x);
        prefetch_write(&x);
        assert_eq!(x, 42);
    }

    #[test]
    fn prefetch_null_and_dangling_do_not_fault() {
        // PREFETCH* never faults; the wrapper must uphold that for any input.
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_read_t0(core::ptr::null::<u64>());
    }

    #[test]
    fn hint_policy_dispatch() {
        let x = 7u32;
        for hint in [PrefetchHint::Nta, PrefetchHint::T0, PrefetchHint::None] {
            hint.issue(&x);
        }
        assert_eq!(PrefetchHint::default(), PrefetchHint::Nta);
    }
}
