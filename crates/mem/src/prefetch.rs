//! Software prefetch intrinsics.
//!
//! The paper uses `PREFETCHNTA` on x86 (via gcc built-ins) and the SPARC
//! "strong" prefetch variant. On stable Rust the x86 family is exposed
//! through [`core::arch::x86_64::_mm_prefetch`]. On other architectures the
//! functions compile to nothing, so the executors remain portable (they just
//! degrade to the no-prefetch baseline behaviour).
//!
//! Prefetching is always safe in the ISA sense — the instruction is a hint
//! and never faults — but Rust's intrinsic takes a raw pointer, so the
//! wrappers here accept `*const T` and are safe to call with any address,
//! including dangling ones.

/// Issue a non-temporal prefetch (`PREFETCHNTA`) for the cache line
/// containing `ptr`.
///
/// This is the variant used throughout the paper's x86 experiments: the line
/// is fetched close to the core while minimizing pollution of the outer
/// cache levels, which is the right trade-off for pointer chains that are
/// visited exactly once per lookup.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_NTA }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Issue a temporal prefetch (`PREFETCHT0`) for the cache line containing
/// `ptr`, pulling it into every cache level.
///
/// Exposed so the benchmark harness can compare hint policies (an ablation
/// the paper alludes to when discussing the SPARC strong prefetch variant).
#[inline(always)]
pub fn prefetch_read_t0<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Prefetch a line that is about to be written.
///
/// This is **not** `PREFETCHW`: stable Rust's `_mm_prefetch` only exposes
/// the read hints (the write/`ET0` hints sit behind unstable features), so
/// this wrapper issues a plain temporal `PREFETCHT0`. That is an acceptable
/// stand-in for the latched build/insert paths — the line still arrives in
/// L1, and the subsequent locked latch instruction upgrades it to exclusive
/// ownership — but it does *not* request ownership up front the way real
/// `PREFETCHW` would. The name records intent, not the opcode; the hint
/// ablation (`bench/bin/ablation`, [`PrefetchHint::Write`]) sweeps this
/// policy alongside the read hints so the substitution stays honest.
#[inline(always)]
pub fn prefetch_write<T>(ptr: *const T) {
    prefetch_read_t0(ptr);
}

/// Which prefetch instruction an executor should issue.
///
/// The paper fixes `PREFETCHNTA` on x86; the harness exposes the policy so
/// the choice can be benchmarked (see `bench/bin/ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchHint {
    /// Non-temporal (`PREFETCHNTA`) — the paper's choice.
    #[default]
    Nta,
    /// All-levels temporal (`PREFETCHT0`).
    T0,
    /// Write-intent policy ([`prefetch_write`]): currently `PREFETCHT0` on
    /// stable Rust (see that function's caveat). Exists so the hint
    /// ablation can sweep the write-intent path like any other policy.
    Write,
    /// Do not prefetch at all (turns any executor into a pure interleaving
    /// scheme; useful to separate interleaving benefit from prefetch
    /// benefit).
    None,
}

impl PrefetchHint {
    /// Issue a prefetch for `ptr` according to the policy.
    #[inline(always)]
    pub fn issue<T>(self, ptr: *const T) {
        match self {
            PrefetchHint::Nta => prefetch_read(ptr),
            PrefetchHint::T0 => prefetch_read_t0(ptr),
            PrefetchHint::Write => prefetch_write(ptr),
            PrefetchHint::None => {}
        }
    }

    /// Whether [`issue`](PrefetchHint::issue) emits an instruction at all.
    /// Ops report this to the executors so `EngineStats::prefetches` stays
    /// honest under the `None` ablation.
    #[inline(always)]
    pub fn is_real(self) -> bool {
        self != PrefetchHint::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_valid_address_is_noop_semantically() {
        let x = 42u64;
        prefetch_read(&x);
        prefetch_read_t0(&x);
        prefetch_write(&x);
        assert_eq!(x, 42);
    }

    #[test]
    fn prefetch_null_and_dangling_do_not_fault() {
        // PREFETCH* never faults; the wrapper must uphold that for any input.
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_read_t0(core::ptr::null::<u64>());
    }

    #[test]
    fn hint_policy_dispatch() {
        let x = 7u32;
        for hint in [PrefetchHint::Nta, PrefetchHint::T0, PrefetchHint::Write, PrefetchHint::None] {
            hint.issue(&x);
        }
        assert_eq!(PrefetchHint::default(), PrefetchHint::Nta);
        assert!(PrefetchHint::Nta.is_real());
        assert!(PrefetchHint::Write.is_real());
        assert!(!PrefetchHint::None.is_real());
    }
}
