//! 1-byte test-and-set latches.
//!
//! The paper's hash-table buckets carry "a 1-byte latch for synchronization"
//! (§4) and §3.2 prescribes the AMAC latch discipline: *try* to acquire with
//! a single atomic swap; on failure do **not** spin — return to the circular
//! buffer and retry when the same lookup comes around again ("we still spin
//! on the latch but at a coarser granularity"). The baseline/GP/SPP code
//! paths spin in place instead, which is exactly the behaviour that costs
//! them performance under read/write dependencies (§5.2).

use core::sync::atomic::{AtomicU8, Ordering};

/// A one-byte test-and-set spin latch.
///
/// * [`try_acquire`](Latch::try_acquire) is the AMAC-style single-attempt
///   acquire (one `xchg`).
/// * [`acquire`](Latch::acquire) spins until the latch is free — the
///   baseline/GP/SPP behaviour.
///
/// The latch is intentionally *not* an RAII guard: the paper's executors
/// carry "holds latch" in the per-lookup state across engine steps, which a
/// lifetime-bound guard cannot express. Callers pair `try_acquire`/`acquire`
/// with [`release`](Latch::release) manually; the data-structure crates keep
/// those pairs within one module so the discipline is auditable.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct Latch(AtomicU8);

const FREE: u8 = 0;
const HELD: u8 = 1;

impl Latch {
    /// A new, free latch.
    #[inline]
    pub const fn new() -> Self {
        Latch(AtomicU8::new(FREE))
    }

    /// Attempt to acquire without blocking. Returns `true` on success.
    #[inline]
    pub fn try_acquire(&self) -> bool {
        // Single atomic swap, as prescribed in §3.2 for multi-threaded AMAC.
        self.0.swap(HELD, Ordering::Acquire) == FREE
    }

    /// Spin until acquired (test-and-test-and-set to keep the line shared
    /// while waiting).
    #[inline]
    pub fn acquire(&self) {
        loop {
            if self.try_acquire() {
                return;
            }
            while self.0.load(Ordering::Relaxed) == HELD {
                core::hint::spin_loop();
            }
        }
    }

    /// Release the latch.
    ///
    /// Must only be called by the holder; this is asserted in debug builds.
    #[inline]
    pub fn release(&self) {
        debug_assert_eq!(self.0.load(Ordering::Relaxed), HELD, "releasing a free latch");
        self.0.store(FREE, Ordering::Release);
    }

    /// Whether the latch is currently held (racy; for stats/tests only).
    #[inline]
    pub fn is_held(&self) -> bool {
        self.0.load(Ordering::Relaxed) == HELD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_acquire_release_cycle() {
        let l = Latch::new();
        assert!(!l.is_held());
        assert!(l.try_acquire());
        assert!(l.is_held());
        assert!(!l.try_acquire(), "second acquire must fail");
        l.release();
        assert!(l.try_acquire());
        l.release();
    }

    #[test]
    fn blocking_acquire() {
        let l = Latch::new();
        l.acquire();
        assert!(l.is_held());
        l.release();
    }

    #[test]
    fn latch_is_one_byte() {
        assert_eq!(core::mem::size_of::<Latch>(), 1);
    }

    #[test]
    fn contended_counter_is_exact() {
        const THREADS: usize = 4;
        const ITERS: usize = 20_000;
        struct SharedCounter(core::cell::UnsafeCell<u64>);
        // SAFETY: all access happens under `latch` in this test.
        unsafe impl Sync for SharedCounter {}
        let latch = Arc::new(Latch::new());
        let counter = Arc::new(SharedCounter(core::cell::UnsafeCell::new(0)));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let l = Arc::clone(&latch);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    l.acquire();
                    // SAFETY: protected by the latch.
                    unsafe { *c.0.get() += 1 };
                    l.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *counter.0.get() }, (THREADS * ITERS) as u64);
    }

    #[test]
    fn try_acquire_under_contention_eventually_succeeds() {
        let latch = Arc::new(Latch::new());
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                l2.acquire();
                l2.release();
            }
        });
        let mut acquired = 0u32;
        while acquired < 100 {
            if latch.try_acquire() {
                acquired += 1;
                latch.release();
            } else {
                std::hint::spin_loop();
            }
        }
        h.join().unwrap();
        assert!(acquired >= 100);
    }
}
