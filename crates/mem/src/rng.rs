//! Tiny, dependency-free PRNGs.
//!
//! The skip-list insert keeps an RNG *inside each in-flight lookup's state*
//! (tower heights are drawn in an AMAC stage, §5.4), so the generator must
//! be a few bytes of `Copy` state with a branch-free `next()`. `rand`'s
//! generators are used on the workload-generation side; these are for the
//! hot paths.

/// xorshift64\* — 8 bytes of state, passes BigCrush's small-state tier,
/// plenty for tower-height draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped (xorshift fixes point at
    /// zero) via splitmix64.
    #[inline]
    pub fn new(seed: u64) -> Self {
        let s = crate::hash::mix64(seed);
        XorShift64 { state: if s == 0 { 0x9E37_79B9_7F4A_7C15 } else { s } }
    }

    /// Next 64 random bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)` (Lemire's multiply-shift; slight bias below
    /// 2^-32 for n < 2^32, irrelevant here).
    #[inline(always)]
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Geometric level draw with P(level >= k+1 | level >= k) = 1/2,
    /// clamped to `max_level`; returns a level in `[0, max_level]`.
    ///
    /// This is Pugh's coin-flip tower height with p = 1/2, computed in one
    /// `trailing_ones` instruction instead of a flip loop.
    #[inline(always)]
    pub fn skiplist_level(&mut self, max_level: u32) -> u32 {
        (self.next_u64().trailing_ones()).min(max_level)
    }
}

impl Default for XorShift64 {
    fn default() -> Self {
        Self::new(0xDEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(n) < n);
            }
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = XorShift64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn skiplist_level_distribution_is_geometric() {
        let mut r = XorShift64::new(3);
        let n = 1_000_000;
        let mut counts = [0u64; 33];
        for _ in 0..n {
            counts[r.skiplist_level(32) as usize] += 1;
        }
        // P(level = 0) = 1/2, P(level = 1) = 1/4, ...
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.125).abs() < 0.01);
    }

    #[test]
    fn skiplist_level_respects_cap() {
        let mut r = XorShift64::new(5);
        for _ in 0..100_000 {
            assert!(r.skiplist_level(4) <= 4);
        }
    }
}
