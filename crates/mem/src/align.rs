//! Cache-line alignment helpers.
//!
//! The paper aligns every data-structure node to a 64-byte cache block
//! (§4, "the data structure nodes are aligned to 64-byte cache block
//! boundary with the aligned attribute"). A prefetch fetches exactly one
//! line, so a node that straddles two lines would need two prefetches and
//! would halve the effective MLP.

/// Cache line size assumed throughout the suite, in bytes.
///
/// 64 bytes on every x86 and most AArch64 parts; the paper's Xeon x5670 and
/// SPARC T4 both use 64-byte lines.
pub const CACHE_LINE: usize = 64;

/// Wrapper that aligns (and pads) `T` to a cache-line boundary.
///
/// `size_of::<CacheAligned<T>>()` is always a multiple of [`CACHE_LINE`],
/// so consecutive elements of a slice never share a line — the layout the
/// paper prescribes for hash-table buckets and tree nodes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C, align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wrap a value.
    #[inline]
    pub fn new(value: T) -> Self {
        CacheAligned(value)
    }

    /// Consume the wrapper, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> core::ops::Deref for CacheAligned<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> core::ops::DerefMut for CacheAligned<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// An owned, cache-line-aligned slice allocation.
///
/// Unlike `Box<[T]>`, the allocation is guaranteed to start at (at least)
/// [`CACHE_LINE`] alignment regardless of `align_of::<T>()`, and the exact
/// layout is remembered so deallocation is sound.
pub struct AlignedBox<T> {
    ptr: core::ptr::NonNull<T>,
    len: usize,
}

// SAFETY: AlignedBox owns its elements exactly like Box<[T]>.
unsafe impl<T: Send> Send for AlignedBox<T> {}
unsafe impl<T: Sync> Sync for AlignedBox<T> {}

impl<T> AlignedBox<T> {
    fn layout(len: usize) -> std::alloc::Layout {
        let size = core::mem::size_of::<T>().checked_mul(len).expect("allocation overflow");
        let align = core::mem::align_of::<T>().max(CACHE_LINE);
        std::alloc::Layout::from_size_align(size.max(1), align).expect("bad layout")
    }
}

impl<T> core::ops::Deref for AlignedBox<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> core::ops::DerefMut for AlignedBox<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as Deref, with unique ownership through &mut self.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedBox<T> {
    fn drop(&mut self) {
        unsafe {
            for i in 0..self.len {
                core::ptr::drop_in_place(self.ptr.as_ptr().add(i));
            }
            std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len));
        }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for AlignedBox<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        (**self).fmt(f)
    }
}

/// Allocate a default-initialized, cache-line-aligned slice of `len`
/// elements.
///
/// Used for bucket arrays: the allocation starts at 64-byte alignment, so
/// `&slice[i]` is line-aligned whenever `size_of::<T>()` is a multiple of
/// 64.
///
/// # Panics
/// Panics on capacity overflow or allocation failure, like `Vec`.
pub fn alloc_aligned_slice<T: Default>(len: usize) -> AlignedBox<T> {
    use std::alloc::{alloc, handle_alloc_error};
    let layout = AlignedBox::<T>::layout(len);
    unsafe {
        let ptr = alloc(layout) as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        for i in 0..len {
            ptr.add(i).write(T::default());
        }
        AlignedBox { ptr: core::ptr::NonNull::new_unchecked(ptr), len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_aligned_is_line_sized() {
        assert_eq!(core::mem::align_of::<CacheAligned<u8>>(), 64);
        assert_eq!(core::mem::size_of::<CacheAligned<u8>>(), 64);
        assert_eq!(core::mem::size_of::<CacheAligned<[u8; 65]>>(), 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut a = CacheAligned::new(5u32);
        *a += 1;
        assert_eq!(*a, 6);
        assert_eq!(a.into_inner(), 6);
    }

    #[test]
    fn aligned_slice_elements_are_aligned() {
        #[derive(Clone)]
        #[repr(C, align(64))]
        struct Node([u8; 64]);
        impl Default for Node {
            fn default() -> Self {
                Node([0; 64])
            }
        }
        let s = alloc_aligned_slice::<Node>(17);
        assert_eq!(s.len(), 17);
        for n in s.iter() {
            assert_eq!((n as *const Node as usize) % CACHE_LINE, 0);
        }
    }

    #[test]
    fn aligned_slice_zero_len() {
        let s = alloc_aligned_slice::<u64>(0);
        assert!(s.is_empty());
    }

    #[test]
    fn aligned_slice_unaligned_type_still_works() {
        let s = alloc_aligned_slice::<u64>(100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&x| x == 0));
    }
}
