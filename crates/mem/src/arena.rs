//! Pointer-stable arena allocators.
//!
//! Every evaluated data structure (hash-table overflow chains, BST nodes,
//! skip-list towers) links nodes with raw pointers, so node storage must
//! never move. Both arenas here allocate in large chunks and hand out
//! addresses that stay valid until the arena is dropped.
//!
//! * [`Arena<T>`] — fixed-size elements (`T` per slot). Used for BST nodes
//!   and other pointer-linked structures.
//! * [`IndexedArena<T>`] — fixed-size elements addressed by **`u32`
//!   indices** instead of 8-byte pointers. Used for hash-table chain nodes,
//!   where halving the link width pays for an extra inline tuple per
//!   64-byte node (see `amac_hashtable::bucket`). Allocation is lock-free
//!   (`&self`), so concurrent build threads share one arena per table.
//! * [`VarArena`] — variable-size, cache-line-aligned byte allocations.
//!   Used for skip-list nodes whose tower height differs per node (the
//!   reason the paper calls skip-list elements "larger memory space" than
//!   the other structures).
//!
//! # Safety model
//! The arenas only *allocate*; they never give out two overlapping regions
//! and never move established allocations (chunks are `Box<[...]>` whose
//! heap storage is stable even when the chunk list reallocates). Turning
//! the returned `*mut` pointers into references is the caller's obligation
//! and is encapsulated inside the data-structure crates.

use crate::align::CACHE_LINE;
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::Mutex;

/// Default number of elements per chunk (amortizes chunk bookkeeping while
/// keeping worst-case wasted memory bounded).
const DEFAULT_CHUNK: usize = 1 << 14;

/// A chunked, append-only arena of fixed-size slots with stable addresses.
///
/// `alloc` returns a raw pointer to a default-initialized `T`. The pointer
/// remains valid (and never aliases another allocation) for the arena's
/// lifetime.
pub struct Arena<T: Default> {
    chunks: Vec<Box<[UnsafeCell<T>]>>,
    /// Slots used in the last chunk.
    used: usize,
    chunk_size: usize,
    len: usize,
}

// SAFETY: the arena itself is only grown through &mut self; concurrent
// access to allocated slots is governed by the caller (latches).
unsafe impl<T: Default + Send> Send for Arena<T> {}

impl<T: Default> Arena<T> {
    /// Create an empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK)
    }

    /// Create an empty arena whose chunks hold `chunk_size` elements.
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Arena { chunks: Vec::new(), used: 0, chunk_size, len: 0 }
    }

    /// Create an arena pre-sized for about `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut a = Self::with_chunk_size(capacity.clamp(1, 1 << 20));
        a.reserve_chunk();
        a
    }

    fn reserve_chunk(&mut self) {
        let chunk: Box<[UnsafeCell<T>]> =
            (0..self.chunk_size).map(|_| UnsafeCell::new(T::default())).collect();
        self.chunks.push(chunk);
        self.used = 0;
    }

    /// Allocate one default-initialized slot and return its stable address.
    #[inline]
    pub fn alloc(&mut self) -> *mut T {
        if self.chunks.is_empty() || self.used == self.chunk_size {
            self.reserve_chunk();
        }
        let chunk = self.chunks.last().expect("chunk exists");
        let ptr = chunk[self.used].get();
        self.used += 1;
        self.len += 1;
        ptr
    }

    /// Allocate a slot initialized to `value`.
    #[inline]
    pub fn alloc_with(&mut self, value: T) -> *mut T {
        let p = self.alloc();
        // SAFETY: freshly allocated, uniquely owned slot.
        unsafe { p.write(value) };
        p
    }

    /// Number of allocated slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all allocated slots (shared references).
    ///
    /// # Safety
    /// Caller must guarantee no thread is mutating any slot concurrently.
    pub unsafe fn iter(&self) -> impl Iterator<Item = &T> {
        let full_chunks = self.chunks.len().saturating_sub(1);
        let used = self.used;
        self.chunks.iter().enumerate().flat_map(move |(ci, chunk)| {
            let limit = if ci < full_chunks { chunk.len() } else { used };
            chunk[..limit].iter().map(|c| &*c.get())
        })
    }
}

impl<T: Default> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A chunked bump allocator for variable-size, cache-line-aligned
/// allocations with stable addresses.
///
/// Returned regions are zero-initialized and aligned to [`CACHE_LINE`].
pub struct VarArena {
    chunks: Vec<Box<[u8]>>,
    /// Offset of the next free byte in the last chunk (always line-aligned).
    offset: usize,
    chunk_bytes: usize,
    allocated: usize,
}

// SAFETY: grown only through &mut self; slot access governed by caller.
unsafe impl Send for VarArena {}

impl VarArena {
    /// Default chunk size: 1 MiB.
    pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

    /// Create an empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_bytes(Self::DEFAULT_CHUNK_BYTES)
    }

    /// Create an empty arena with `chunk_bytes`-sized chunks.
    pub fn with_chunk_bytes(chunk_bytes: usize) -> Self {
        assert!(chunk_bytes >= CACHE_LINE, "chunk must hold at least one line");
        VarArena { chunks: Vec::new(), offset: 0, chunk_bytes, allocated: 0 }
    }

    /// Allocate `size` zeroed bytes at cache-line alignment; returns a
    /// stable pointer.
    ///
    /// # Panics
    /// Panics if `size` is zero or exceeds the chunk size.
    pub fn alloc_bytes(&mut self, size: usize) -> *mut u8 {
        assert!(size > 0, "zero-size allocation");
        let rounded = size.div_ceil(CACHE_LINE) * CACHE_LINE;
        assert!(rounded <= self.chunk_bytes, "allocation larger than chunk");
        if self.chunks.is_empty() || self.offset + rounded > self.chunk_bytes {
            // Over-allocate by one line so we can align the base.
            let chunk = vec![0u8; self.chunk_bytes + CACHE_LINE].into_boxed_slice();
            self.chunks.push(chunk);
            let base = self.chunks.last().unwrap().as_ptr() as usize;
            // First aligned offset within the fresh chunk.
            self.offset = (CACHE_LINE - base % CACHE_LINE) % CACHE_LINE;
        }
        let chunk = self.chunks.last_mut().expect("chunk exists");
        // SAFETY: offset+rounded <= chunk_bytes + alignment slack by the
        // checks above.
        let ptr = unsafe { chunk.as_mut_ptr().add(self.offset) };
        debug_assert_eq!(ptr as usize % CACHE_LINE, 0);
        self.offset += rounded;
        self.allocated += 1;
        ptr
    }

    /// Number of allocations served.
    #[inline]
    pub fn allocations(&self) -> usize {
        self.allocated
    }

    /// Total bytes held by the arena's chunks.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }
}

impl Default for VarArena {
    fn default() -> Self {
        Self::new()
    }
}

/// The reserved "null" chain index: no [`IndexedArena`] allocation ever
/// returns it, so it plays the role of the null pointer in `u32`-linked
/// chains.
pub const NULL_INDEX: u32 = u32::MAX;

/// log2 of the first slab's slot count.
const LOG_BASE: u32 = 10;
/// Slots in slab 0 (slab `k` holds `BASE << k` slots).
const BASE: usize = 1 << LOG_BASE;
/// Slab directory size: geometric slabs cover the whole `u32` index space
/// (`BASE * (2^23 - 1) > u32::MAX`).
const MAX_SLABS: usize = 23;

/// Slab index holding arena index `idx` — the geometry is a pure
/// function of the index (slab `k` holds indices
/// `[BASE·(2^k − 1), BASE·(2^(k+1) − 1))`), shared by every
/// [`IndexedArena`] regardless of element type. Memory-tier placement
/// policies (`amac_tier::TierPolicy::slab_tier`) key on this value, so
/// the slab an index maps to is part of the arena's stable contract.
#[inline(always)]
pub fn slab_of_index(idx: u32) -> u32 {
    let i = idx as usize + BASE;
    (usize::BITS - 1 - i.leading_zeros()) - LOG_BASE
}

/// A chunked, append-only arena whose slots are addressed by **`u32`
/// indices** with stable `index -> pointer` resolution.
///
/// Motivation (PAPER.md §4 layout math): a chained hash-table node spends
/// its whole budget on one cache line, and an 8-byte `next` pointer is the
/// single largest non-payload field. Linking chains by `u32` arena index
/// instead frees 4 bytes — with the slot fingerprints that is exactly one
/// more 16-byte tuple per 64-byte node — at the cost of one
/// `index -> pointer` resolution per hop. The resolution is engineered to
/// stay off the critical path:
///
/// * slabs grow geometrically (slab `k` holds `BASE << k` slots), so the
///   whole directory is a fixed 23-entry array of slab base pointers —
///   a few always-cache-hot lines, never reallocated;
/// * [`get`](IndexedArena::get) is branch-free: one `leading_zeros`, one
///   L1-resident directory load, one add. The dependent DRAM access is
///   still the node itself, which the executors prefetch as before.
///
/// Allocation takes `&self` (an atomic bump plus a mutex-guarded cold path
/// when a fresh slab is first touched), so all build handles of one table
/// share one arena and indices form a single address space.
///
/// # Safety model
/// As for [`Arena`]: slots never move and never alias. Publication is
/// safe across threads: a slab's base pointer is `Release`-stored before
/// any index inside it is handed out, and `get` `Acquire`-loads it, so any
/// thread that legitimately learned an index (e.g. by reading a chain link
/// under the publishing thread's latch discipline) observes the slab.
pub struct IndexedArena<T: Default> {
    /// Slab base pointers, lazily populated; entry `k` points at
    /// `BASE << k` slots.
    slabs: [AtomicPtr<UnsafeCell<T>>; MAX_SLABS],
    /// Next index to hand out.
    next: AtomicU32,
    /// Owns the slab storage (freed on drop) and serializes slab creation.
    owned: Mutex<Vec<Box<[UnsafeCell<T>]>>>,
}

// SAFETY: allocation is internally synchronized (atomics + mutex); access
// to allocated slots is governed by the caller exactly as for `Arena`.
unsafe impl<T: Default + Send> Send for IndexedArena<T> {}
unsafe impl<T: Default + Send> Sync for IndexedArena<T> {}

impl<T: Default> IndexedArena<T> {
    /// Create an empty arena (no slabs allocated yet).
    pub fn new() -> Self {
        IndexedArena {
            slabs: [const { AtomicPtr::new(core::ptr::null_mut()) }; MAX_SLABS],
            next: AtomicU32::new(0),
            owned: Mutex::new(Vec::new()),
        }
    }

    /// Slab index and in-slab offset for `idx`.
    #[inline(always)]
    fn locate(idx: u32) -> (usize, usize) {
        // Shifting by BASE makes slab boundaries pure powers of two:
        // idx + BASE ∈ [BASE << k, BASE << (k+1)) ⇔ idx lives in slab k.
        let k = slab_of_index(idx) as usize;
        (k, idx as usize + BASE - (BASE << k))
    }

    /// Allocate one default-initialized slot, returning its index.
    #[inline]
    pub fn alloc_index(&self) -> u32 {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(idx != NULL_INDEX, "indexed arena exhausted (2^32 - 1 slots)");
        let (k, _) = Self::locate(idx);
        if self.slabs[k].load(Ordering::Acquire).is_null() {
            self.grow_slab(k);
        }
        idx
    }

    /// Allocate one slot, returning both its index and its stable address.
    #[inline]
    pub fn alloc(&self) -> (u32, *mut T) {
        let idx = self.alloc_index();
        (idx, self.get(idx))
    }

    /// Resolve an index to its slot's stable address.
    ///
    /// `idx` must come from this arena's [`alloc`](IndexedArena::alloc)
    /// (checked in debug builds); [`NULL_INDEX`] is never a valid input.
    #[inline(always)]
    pub fn get(&self, idx: u32) -> *mut T {
        let (k, off) = Self::locate(idx);
        let slab = self.slabs[k].load(Ordering::Acquire);
        debug_assert!(
            !slab.is_null() && idx < self.next.load(Ordering::Relaxed),
            "index {idx} not allocated by this arena"
        );
        // SAFETY: `off < BASE << k` by `locate`, and the slab stores
        // `BASE << k` slots. raw_get avoids materializing a reference.
        unsafe { UnsafeCell::raw_get(slab.add(off) as *const UnsafeCell<T>) }
    }

    /// Reverse-resolve a pointer previously returned by this arena to its
    /// index (O(slab count); test/validation use, not a hot path).
    pub fn index_of(&self, ptr: *const T) -> Option<u32> {
        let p = ptr as usize;
        for k in 0..MAX_SLABS {
            let slab = self.slabs[k].load(Ordering::Acquire);
            if slab.is_null() {
                continue;
            }
            let base = slab as usize;
            let len = BASE << k;
            if (base..base + len * core::mem::size_of::<UnsafeCell<T>>()).contains(&p) {
                let off = (p - base) / core::mem::size_of::<UnsafeCell<T>>();
                let idx = ((BASE << k) + off - BASE) as u32;
                return (idx < self.next.load(Ordering::Acquire)).then_some(idx);
            }
        }
        None
    }

    /// Number of allocated slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire) as usize
    }

    /// True if nothing has been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cold path: create slab `k` exactly once.
    #[cold]
    fn grow_slab(&self, k: usize) {
        let mut owned = self.owned.lock().expect("indexed arena poisoned");
        if self.slabs[k].load(Ordering::Relaxed).is_null() {
            let slab: Box<[UnsafeCell<T>]> =
                (0..BASE << k).map(|_| UnsafeCell::new(T::default())).collect();
            let ptr = slab.as_ptr() as *mut UnsafeCell<T>;
            owned.push(slab);
            self.slabs[k].store(ptr, Ordering::Release);
        }
    }
}

impl<T: Default> Default for IndexedArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn arena_addresses_are_stable_and_distinct() {
        let mut a = Arena::<u64>::with_chunk_size(8);
        let ptrs: Vec<*mut u64> = (0..100).map(|_| a.alloc()).collect();
        let set: HashSet<usize> = ptrs.iter().map(|p| *p as usize).collect();
        assert_eq!(set.len(), 100, "all pointers distinct");
        for (i, p) in ptrs.iter().enumerate() {
            unsafe { **p = i as u64 };
        }
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(unsafe { **p }, i as u64, "no clobbering across chunk growth");
        }
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn arena_alloc_with_initializes() {
        let mut a = Arena::<(u64, u64)>::new();
        let p = a.alloc_with((3, 4));
        assert_eq!(unsafe { *p }, (3, 4));
    }

    #[test]
    fn arena_iter_visits_everything_in_order() {
        let mut a = Arena::<u32>::with_chunk_size(3);
        for i in 0..10u32 {
            a.alloc_with(i);
        }
        let collected: Vec<u32> = unsafe { a.iter().copied().collect() };
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_arena() {
        let a = Arena::<u8>::new();
        assert!(a.is_empty());
        assert_eq!(unsafe { a.iter().count() }, 0);
    }

    #[test]
    fn var_arena_alignment_and_zeroing() {
        let mut a = VarArena::with_chunk_bytes(4096);
        for size in [1usize, 17, 64, 65, 400, 4096] {
            let p = a.alloc_bytes(size);
            assert_eq!(p as usize % CACHE_LINE, 0, "size {size} not aligned");
            for i in 0..size {
                assert_eq!(unsafe { *p.add(i) }, 0, "byte {i} of size {size} not zero");
            }
        }
        assert_eq!(a.allocations(), 6);
    }

    #[test]
    fn var_arena_regions_do_not_overlap() {
        let mut a = VarArena::with_chunk_bytes(1024);
        let mut regions: Vec<(usize, usize)> = Vec::new();
        for i in 0..200 {
            let size = 1 + (i * 37) % 300;
            let p = a.alloc_bytes(size) as usize;
            regions.push((p, size));
        }
        regions.sort();
        for w in regions.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap between allocations");
        }
        // Writes to one region must not leak into another.
        let mut b = VarArena::with_chunk_bytes(256);
        let p1 = b.alloc_bytes(64);
        let p2 = b.alloc_bytes(64);
        unsafe {
            core::ptr::write_bytes(p1, 0xAA, 64);
            assert_eq!(*p2, 0);
        }
    }

    #[test]
    fn indexed_arena_roundtrips_and_is_dense() {
        let a = IndexedArena::<u64>::new();
        assert!(a.is_empty());
        let mut ptrs = Vec::new();
        for i in 0..5000u32 {
            let (idx, p) = a.alloc();
            assert_eq!(idx, i, "indices are dense and in allocation order");
            assert_eq!(a.get(idx), p);
            assert_eq!(a.index_of(p), Some(idx));
            unsafe { *p = u64::from(i) * 3 };
            ptrs.push(p);
        }
        assert_eq!(a.len(), 5000);
        let set: HashSet<usize> = ptrs.iter().map(|p| *p as usize).collect();
        assert_eq!(set.len(), 5000, "no two allocations alias");
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(unsafe { **p }, i as u64 * 3, "no clobbering across slab growth");
        }
    }

    #[test]
    fn slab_of_index_matches_geometry() {
        // Slab k spans [BASE·(2^k − 1), BASE·(2^(k+1) − 1)).
        assert_eq!(slab_of_index(0), 0);
        assert_eq!(slab_of_index((BASE - 1) as u32), 0);
        assert_eq!(slab_of_index(BASE as u32), 1);
        assert_eq!(slab_of_index((3 * BASE - 1) as u32), 1);
        assert_eq!(slab_of_index((3 * BASE) as u32), 2);
        // Consistent with the arena's own locate() on every boundary.
        for idx in [0u32, 1, 1023, 1024, 3071, 3072, 7167, 7168, 1 << 20] {
            let (k, off) = IndexedArena::<u64>::locate(idx);
            assert_eq!(k as u32, slab_of_index(idx), "idx {idx}");
            assert!(off < BASE << k, "idx {idx} offset out of slab");
        }
    }

    #[test]
    fn indexed_arena_slots_default_initialize() {
        let a = IndexedArena::<(u64, u64)>::new();
        let (idx, _) = a.alloc();
        assert_eq!(unsafe { *a.get(idx) }, (0, 0));
    }

    #[test]
    fn indexed_arena_index_of_rejects_foreign_pointers() {
        let a = IndexedArena::<u64>::new();
        let _ = a.alloc();
        let other = 7u64;
        assert_eq!(a.index_of(&other), None);
    }

    #[test]
    fn indexed_arena_concurrent_alloc_is_disjoint() {
        let a = IndexedArena::<u64>::new();
        let per_thread = 4000u64;
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let (idx, p) = a.alloc();
                        // Tag the slot; a collision would clobber it.
                        unsafe { *p = (tid << 32) | i };
                        assert_eq!(a.get(idx), p);
                    }
                });
            }
        });
        assert_eq!(a.len(), 4 * per_thread as usize);
        // Every slot carries exactly one thread's tag: no aliasing.
        let mut seen = HashSet::new();
        for idx in 0..a.len() as u32 {
            let v = unsafe { *a.get(idx) };
            assert!(seen.insert(v), "value {v:#x} written twice: slots aliased");
        }
    }

    #[test]
    #[should_panic(expected = "allocation larger than chunk")]
    fn var_arena_rejects_oversized() {
        let mut a = VarArena::with_chunk_bytes(128);
        a.alloc_bytes(129);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn var_arena_rejects_zero() {
        let mut a = VarArena::new();
        a.alloc_bytes(0);
    }
}
