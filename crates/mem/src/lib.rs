//! Memory substrate for the AMAC reproduction.
//!
//! The paper's techniques (AMAC, GP, SPP) are all built on three low-level
//! capabilities that this crate provides:
//!
//! * **software prefetch** — issuing a non-blocking cache-line fetch for an
//!   address that will be dereferenced a few hundred cycles later
//!   ([`prefetch`]);
//! * **cache-line aligned, pointer-stable node storage** — the paper aligns
//!   every data-structure node to a 64-byte cache block ([`arena`],
//!   [`align`]);
//! * **1-byte test-and-set latches** used by the hash-join build, group-by
//!   and skip-list insert code paths ([`latch`]).
//!
//! It also hosts the dependency-free integer hashing and small PRNGs shared
//! by the data-structure crates ([`hash`], [`rng`]).

pub mod align;
pub mod arena;
pub mod hash;
pub mod latch;
pub mod prefetch;
pub mod rng;

pub use align::{CacheAligned, CACHE_LINE};
pub use arena::{slab_of_index, Arena, IndexedArena, VarArena, NULL_INDEX};
pub use latch::Latch;
pub use prefetch::{prefetch_read, prefetch_read_t0, prefetch_write};
