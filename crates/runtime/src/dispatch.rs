//! Morsel dispatch: who processes which slice of the input.
//!
//! The input index space is split into one contiguous range per thread
//! (like the paper's static partitioning), but each range is consumed
//! through an atomic cursor in small *morsels*. A thread drains its own
//! range first — preserving the locality the static scheme gets for free —
//! and then, under [`Scheduling::WorkSteal`], takes morsels from the range
//! with the most work left, so a skewed or latch-heavy region never
//! leaves the other cores idle at the tail.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How morsels are handed to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// One contiguous chunk per thread, no redistribution — the paper's
    /// §5.1 setup, kept as the comparison baseline.
    StaticChunk,
    /// A single global cursor; every thread pulls the next morsel from it.
    /// Perfect balance, but all threads contend on one cache line and
    /// NUMA locality is accidental.
    SharedCursor,
    /// Per-thread ranges with morsel stealing from the fullest victim —
    /// the default.
    #[default]
    WorkSteal,
}

/// Cache-line-isolated cursor over one contiguous index range.
#[repr(align(128))]
struct RangeCursor {
    next: AtomicUsize,
    end: usize,
}

/// Hands out morsels of the index space `0..len`.
pub struct Dispatcher {
    ranges: Vec<RangeCursor>,
    morsel: usize,
    steal: bool,
}

impl Dispatcher {
    /// Plan dispatch of `len` items to `threads` workers in `morsel`-sized
    /// units under `scheduling`.
    pub fn new(len: usize, threads: usize, morsel: usize, scheduling: Scheduling) -> Dispatcher {
        let threads = threads.max(1);
        let (parts, steal, morsel) = match scheduling {
            Scheduling::SharedCursor => (1, false, morsel.max(1)),
            // One morsel == the whole per-thread range.
            Scheduling::StaticChunk => (threads, false, usize::MAX),
            Scheduling::WorkSteal => (threads, true, morsel.max(1)),
        };
        let per = len.div_ceil(parts).max(1);
        let ranges = (0..parts)
            .map(|i| {
                let lo = (i * per).min(len);
                let hi = ((i + 1) * per).min(len);
                RangeCursor { next: AtomicUsize::new(lo), end: hi }
            })
            .collect();
        Dispatcher { ranges, morsel, steal }
    }

    /// Next morsel for thread `tid`, with a flag marking stolen morsels.
    /// Returns `None` once every range is exhausted.
    pub fn next_morsel(&self, tid: usize) -> Option<(Range<usize>, bool)> {
        let parts = self.ranges.len();
        let home = tid % parts;
        if let Some(r) = self.take(home) {
            return Some((r, false));
        }
        if !self.steal {
            return None;
        }
        loop {
            // Steal from the victim with the most remaining work, judged
            // by the counts captured during this scan (a re-read could see
            // the chosen victim drained and give up while other ranges
            // still hold morsels). A failed take raced with another
            // stealer; rescan — progress is monotonic, so this terminates.
            let victim = (0..parts)
                .filter(|&i| i != home)
                .map(|i| (self.remaining(i), i))
                .max()
                .filter(|&(rem, _)| rem > 0)
                .map(|(_, i)| i)?;
            if let Some(r) = self.take(victim) {
                return Some((r, true));
            }
        }
    }

    /// Total items not yet handed out (approximate under concurrency).
    pub fn remaining_total(&self) -> usize {
        (0..self.ranges.len()).map(|i| self.remaining(i)).sum()
    }

    fn remaining(&self, part: usize) -> usize {
        let rc = &self.ranges[part];
        rc.end.saturating_sub(rc.next.load(Ordering::Relaxed))
    }

    fn take(&self, part: usize) -> Option<Range<usize>> {
        let rc = &self.ranges[part];
        let mut cur = rc.next.load(Ordering::Relaxed);
        loop {
            if cur >= rc.end {
                return None;
            }
            let hi = cur.saturating_add(self.morsel).min(rc.end);
            match rc.next.compare_exchange_weak(cur, hi, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Some(cur..hi),
                Err(observed) => cur = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(d: &Dispatcher, tid: usize) -> Vec<(Range<usize>, bool)> {
        let mut out = Vec::new();
        while let Some(m) = d.next_morsel(tid) {
            out.push(m);
        }
        out
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for scheduling in [Scheduling::StaticChunk, Scheduling::SharedCursor, Scheduling::WorkSteal]
        {
            let d = Dispatcher::new(1000, 4, 64, scheduling);
            let mut seen = BTreeSet::new();
            for tid in 0..4 {
                for (r, _) in drain_all(&d, tid) {
                    for i in r {
                        assert!(seen.insert(i), "{scheduling:?}: index {i} duplicated");
                    }
                }
            }
            assert_eq!(seen.len(), 1000, "{scheduling:?}");
        }
    }

    #[test]
    fn static_chunk_is_one_morsel_per_thread() {
        let d = Dispatcher::new(1000, 4, 64, Scheduling::StaticChunk);
        let got = drain_all(&d, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 500..750);
        assert!(!got[0].1);
    }

    #[test]
    fn worksteal_marks_foreign_morsels_stolen() {
        let d = Dispatcher::new(256, 2, 64, Scheduling::WorkSteal);
        let all = drain_all(&d, 0);
        assert_eq!(all.iter().filter(|(_, stolen)| !stolen).count(), 2, "own range: 2 morsels");
        assert_eq!(all.iter().filter(|(_, stolen)| *stolen).count(), 2, "stolen: 2 morsels");
    }

    #[test]
    fn static_chunk_never_redistributes() {
        let d = Dispatcher::new(100, 4, 8, Scheduling::StaticChunk);
        assert_eq!(drain_all(&d, 0).len(), 1);
        assert!(d.next_morsel(0).is_none(), "thread 0 must idle, not steal");
        assert!(d.remaining_total() > 0);
    }

    #[test]
    fn concurrent_consumption_partitions_the_space() {
        let d = Dispatcher::new(100_000, 8, 128, Scheduling::WorkSteal);
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|tid| {
                    let d = &d;
                    s.spawn(move || {
                        let mut n = 0;
                        while let Some((r, _)) = d.next_morsel(tid) {
                            n += r.len();
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100_000);
        assert_eq!(d.remaining_total(), 0);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let d = Dispatcher::new(0, 4, 64, Scheduling::WorkSteal);
        assert!(d.next_morsel(0).is_none());
    }

    #[test]
    fn more_threads_than_items() {
        let d = Dispatcher::new(3, 16, 64, Scheduling::WorkSteal);
        let total: usize = (0..16).flat_map(|tid| drain_all(&d, tid)).map(|(r, _)| r.len()).sum();
        assert_eq!(total, 3);
    }
}
