//! # amac_runtime — morsel-driven work-stealing parallelism for AMAC ops
//!
//! The paper's multi-thread experiments (§5.1) give each thread one
//! contiguous chunk of the input. That reproduces the figures, but a
//! skewed or latch-heavy chunk leaves every other core idle at the tail.
//! This crate replaces static chunking with **morsel-driven dispatch**
//! (HyPer-style): the input is cut into small morsels behind per-thread
//! atomic cursors, threads drain their own range first and then steal
//! from the fullest victim, and each worker keeps one persistent
//! [`LookupOp`] whose AMAC window survives morsel boundaries
//! ([`AmacSession`]) — so miss-level parallelism never drains between
//! morsels.
//!
//! ```
//! use amac_runtime::{execute, MorselConfig};
//! # use amac::engine::{LookupOp, Step, Technique, TuningParams};
//! # struct NopOp;
//! # #[derive(Default)] struct NopState(u64);
//! # impl LookupOp for NopOp {
//! #     type Input = u64;
//! #     type State = NopState;
//! #     fn budgeted_steps(&self) -> usize { 1 }
//! #     fn start(&mut self, i: u64, s: &mut NopState) { s.0 = i; }
//! #     fn step(&mut self, _s: &mut NopState) -> Step { Step::Done }
//! # }
//! let inputs: Vec<u64> = (0..100_000).collect();
//! let cfg = MorselConfig::with_threads(4);
//! let run = execute(
//!     &inputs,
//!     Technique::Amac,
//!     TuningParams::default(),
//!     &cfg,
//!     |_tid| NopOp, // one op (and one AMAC window) per worker thread
//! );
//! assert_eq!(run.report.stats.lookups, 100_000);
//! assert_eq!(run.ops.len(), 4);
//! ```
//!
//! Observability: [`RunReport`] carries merged [`EngineStats`], one
//! [`ThreadReport`] per worker (busy time, finish time, morsels, steals)
//! and a merged per-morsel latency histogram
//! ([`amac_metrics::LatencyHistogram`]), so tail stragglers and steal
//! traffic are visible to benches and tests.

#![warn(missing_docs)]

mod dispatch;
mod session;
#[cfg(test)]
pub(crate) mod testop;

pub use dispatch::{Dispatcher, Scheduling};
pub use session::AmacSession;

use amac::engine::{run, EngineStats, LookupOp, Technique, TuningParams};
use amac_metrics::{JsonBuf, LatencyHistogram};
use amac_trace::{TraceEvent, Tracer};
use std::time::Instant;

/// Default morsel size in tuples (the 16–64K band keeps a morsel a few
/// L2s big: small enough to balance, large enough to amortize dispatch).
pub const DEFAULT_MORSEL_TUPLES: usize = 32 * 1024;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct MorselConfig {
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Tuples per morsel (clamped to at least 1).
    pub morsel_tuples: usize,
    /// Dispatch discipline.
    pub scheduling: Scheduling,
    /// Calibrate the in-flight window at startup via
    /// [`TuningParams::auto`] over a stride-sample of the input,
    /// overriding the caller's `TuningParams` (AMAC only; the probe phase
    /// *executes* lookups, so enable it only for read-only ops).
    pub auto_tune: bool,
}

impl Default for MorselConfig {
    fn default() -> Self {
        MorselConfig {
            threads: 0,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
            scheduling: Scheduling::WorkSteal,
            auto_tune: false,
        }
    }
}

impl MorselConfig {
    /// Work-stealing defaults with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        MorselConfig { threads, ..Default::default() }
    }

    /// The paper's static one-chunk-per-thread dispatch (the comparison
    /// baseline for every morsel-vs-static experiment).
    pub fn static_chunks(threads: usize) -> Self {
        MorselConfig { threads, scheduling: Scheduling::StaticChunk, ..Default::default() }
    }

    /// `threads`, resolving `0` to the host's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
        }
    }
}

/// Per-worker observations for one run.
#[derive(Debug, Clone, Default)]
pub struct ThreadReport {
    /// Worker index.
    pub tid: usize,
    /// Time spent executing morsels (excludes idling on the dispatcher).
    pub busy_seconds: f64,
    /// When this worker retired its last lookup, relative to the start of
    /// the parallel section — the straggler metric.
    pub finished_at: f64,
    /// Morsels executed.
    pub morsels: u64,
    /// Tuples executed.
    pub tuples: u64,
    /// Morsels taken from another thread's range.
    pub steals: u64,
    /// This worker's executor counters.
    pub stats: EngineStats,
}

/// Merged result of one parallel run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Executor counters merged over all workers.
    pub stats: EngineStats,
    /// Per-worker observations, indexed by `tid`.
    pub per_thread: Vec<ThreadReport>,
    /// Wall time of the parallel section.
    pub seconds: f64,
    /// Total tuples processed.
    pub tuples: u64,
    /// The in-flight window actually used (after auto-tuning, if any).
    pub in_flight: usize,
    /// Per-morsel service times (nanoseconds), merged over all workers.
    pub morsel_ns: LatencyHistogram,
    /// Merged structured trace: each worker's tracer is taken from its op
    /// at harvest and folded in `tid` order, so two runs with the same
    /// per-thread schedules render identically. Disabled (and empty)
    /// unless `make_op` installed an enabled [`amac_trace::Tracer`] on
    /// the per-worker ops.
    pub trace: Tracer,
}

impl RunReport {
    /// Tuples per second over the parallel section.
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.tuples as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Total stolen morsels.
    pub fn steals(&self) -> u64 {
        self.per_thread.iter().map(|t| t.steals).sum()
    }

    /// Total morsels.
    pub fn morsels(&self) -> u64 {
        self.per_thread.iter().map(|t| t.morsels).sum()
    }

    /// Latest per-thread finish time.
    pub fn max_finished_at(&self) -> f64 {
        self.per_thread.iter().map(|t| t.finished_at).fold(0.0, f64::max)
    }

    /// Median per-thread finish time.
    pub fn median_finished_at(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.per_thread.iter().map(|t| t.finished_at).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN finish time"));
        v[v.len() / 2]
    }

    /// Straggler factor: latest finish over median finish (1.0 = flat).
    pub fn imbalance(&self) -> f64 {
        let med = self.median_finished_at();
        if med > 0.0 {
            self.max_finished_at() / med
        } else {
            1.0
        }
    }

    /// Fold a later phase's report into this one (multi-phase drivers such
    /// as level-synchronous BFS run one `execute` per phase). Counters and
    /// times add up; per-thread entries merge by `tid`. A thread's
    /// `finished_at` becomes the **sum of its per-phase finish offsets** —
    /// its cumulative time-to-idle — so [`imbalance`](RunReport::imbalance)
    /// on an absorbed report measures the straggler factor accumulated
    /// across phases, not within any single one.
    pub fn absorb(&mut self, other: &RunReport) {
        self.stats.merge(&other.stats);
        self.seconds += other.seconds;
        self.tuples += other.tuples;
        self.in_flight = self.in_flight.max(other.in_flight);
        self.morsel_ns.merge(&other.morsel_ns);
        if self.per_thread.len() < other.per_thread.len() {
            self.per_thread.resize_with(other.per_thread.len(), ThreadReport::default);
        }
        for (mine, theirs) in self.per_thread.iter_mut().zip(&other.per_thread) {
            mine.tid = theirs.tid;
            mine.busy_seconds += theirs.busy_seconds;
            mine.finished_at += theirs.finished_at;
            mine.morsels += theirs.morsels;
            mine.tuples += theirs.tuples;
            mine.steals += theirs.steals;
            mine.stats.merge(&theirs.stats);
        }
        self.trace.merge(other.trace.clone());
    }

    /// Serialize the report as one JSON object: the merged counters, the
    /// per-thread observations, and — when the run was traced — the
    /// stall-attribution profile as `stall_profile` rows (one per
    /// [`amac_trace::StallKey`] cell, in key order). The shape matches
    /// the bench trajectory blobs so regress tooling can diff it.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.u64_field("lookups", self.stats.lookups);
        j.u64_field("tuples", self.tuples);
        j.f64_field("seconds", self.seconds);
        j.f64_field("throughput", self.throughput());
        j.u64_field("in_flight", self.in_flight as u64);
        j.u64_field("morsels", self.morsels());
        j.u64_field("steals", self.steals());
        j.f64_field("imbalance", self.imbalance());
        j.u64_field("sim_cycles", self.stats.sim_cycles);
        j.u64_field("sim_stalls", self.stats.sim_stalls);
        j.u64_field("trace_events", self.trace.len() as u64);
        j.u64_field("trace_loads", self.trace.loads());
        j.u64_field("trace_retires", self.trace.retires());
        j.u64_field("trace_stalls", self.trace.stalls());
        j.begin_arr_key("threads");
        for t in &self.per_thread {
            j.begin_obj()
                .u64_field("tid", t.tid as u64)
                .f64_field("busy_seconds", t.busy_seconds)
                .f64_field("finished_at", t.finished_at)
                .u64_field("morsels", t.morsels)
                .u64_field("tuples", t.tuples)
                .u64_field("steals", t.steals)
                .end_obj();
        }
        j.end_arr();
        j.begin_arr_key("stall_profile");
        for (k, v) in self.trace.stall_rows() {
            j.begin_obj()
                .str_field("op", k.op)
                .str_field("class", &k.class.to_string())
                .str_field("tier", &k.tier.to_string())
                .u64_field("hop", u64::from(k.hop))
                .u64_field("tenant", u64::from(k.tenant))
                .u64_field("shard", u64::from(k.shard))
                .u64_field("ticks", v)
                .end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

/// A finished run: the per-thread ops (holding their materialized
/// outputs/accumulators, indexed by `tid`) plus the merged report.
pub struct RunOutput<O> {
    /// One op per worker, in `tid` order; callers fold their outputs.
    pub ops: Vec<O>,
    /// Merged counters and per-thread observations.
    pub report: RunReport,
}

/// Run `make_op(tid)` per worker over `inputs` with morsel dispatch.
///
/// Equivalent to [`execute_with_prologue`] with a no-op prologue.
pub fn execute<I, O, F>(
    inputs: &[I],
    technique: Technique,
    params: TuningParams,
    cfg: &MorselConfig,
    make_op: F,
) -> RunOutput<O>
where
    I: Copy + Sync,
    O: LookupOp<Input = I> + Send,
    F: Fn(usize) -> O + Sync,
{
    execute_with_prologue(inputs, technique, params, cfg, make_op, |_op: &mut O, _m: &[I]| {})
}

/// [`execute`] with a per-morsel prologue hook.
///
/// `prologue(op, morsel)` runs on the worker thread right before the
/// morsel's lookups start — the place to issue temporal
/// (`prefetch_read_t0`) prefetches for structures the whole morsel will
/// reuse (bucket headers under skew, tree roots), while the chain nodes
/// themselves keep the paper's non-temporal hint inside the op.
pub fn execute_with_prologue<I, O, F, P>(
    inputs: &[I],
    technique: Technique,
    params: TuningParams,
    cfg: &MorselConfig,
    make_op: F,
    prologue: P,
) -> RunOutput<O>
where
    I: Copy + Sync,
    O: LookupOp<Input = I> + Send,
    F: Fn(usize) -> O + Sync,
    P: Fn(&mut O, &[I]) + Sync,
{
    let threads = cfg.resolved_threads().max(1);
    let params = if cfg.auto_tune && technique == Technique::Amac {
        TuningParams::auto(|| make_op(0), &stride_sample(inputs))
    } else {
        params
    };
    let dispatcher = Dispatcher::new(inputs.len(), threads, cfg.morsel_tuples, cfg.scheduling);
    let section = Instant::now();

    let mut results: Vec<(O, ThreadReport, LatencyHistogram)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let dispatcher = &dispatcher;
                let make_op = &make_op;
                let prologue = &prologue;
                scope.spawn(move || {
                    let mut op = make_op(tid);
                    let mut session =
                        (technique == Technique::Amac).then(|| AmacSession::new(params.in_flight));
                    let mut rep = ThreadReport { tid, ..Default::default() };
                    let mut hist = LatencyHistogram::new();
                    while let Some((range, stolen)) = dispatcher.next_morsel(tid) {
                        let morsel = &inputs[range];
                        let t0 = Instant::now();
                        prologue(&mut op, morsel);
                        match session.as_mut() {
                            Some(s) => s.feed(&mut op, morsel, &mut rep.stats),
                            None => rep.stats.merge(&run(technique, &mut op, morsel, params)),
                        }
                        let dt = t0.elapsed();
                        hist.record(dt.as_nanos() as u64);
                        rep.busy_seconds += dt.as_secs_f64();
                        rep.morsels += 1;
                        rep.tuples += morsel.len() as u64;
                        rep.steals += stolen as u64;
                        if op.tracing() {
                            op.trace(TraceEvent::morsel(
                                op.sim_now(),
                                tid as u16,
                                morsel.len() as u64,
                            ));
                        }
                    }
                    if let Some(s) = session.as_mut() {
                        let t0 = Instant::now();
                        s.drain(&mut op, &mut rep.stats);
                        rep.busy_seconds += t0.elapsed().as_secs_f64();
                    }
                    rep.finished_at = section.elapsed().as_secs_f64();
                    (op, rep, hist)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("runtime worker panicked")).collect()
    });
    let seconds = section.elapsed().as_secs_f64();

    let mut report = RunReport {
        seconds,
        tuples: inputs.len() as u64,
        in_flight: params.in_flight,
        ..Default::default()
    };
    let mut ops = Vec::with_capacity(results.len());
    for (mut op, rep, hist) in results.drain(..) {
        report.stats.merge(&rep.stats);
        report.morsel_ns.merge(&hist);
        report.trace.merge(op.take_tracer());
        report.per_thread.push(rep);
        ops.push(op);
    }
    RunOutput { ops, report }
}

/// Up-to-16K-element stride sample spanning the whole input, for the
/// tuning probe (a contiguous prefix would bias the calibration on
/// clustered inputs, where one region's chain lengths are unlike the
/// rest).
fn stride_sample<I: Copy>(inputs: &[I]) -> Vec<I> {
    const TARGET: usize = 16 * 1024;
    let stride = inputs.len().div_ceil(TARGET).max(1);
    inputs.iter().step_by(stride).take(TARGET).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testop::ChainOp;
    use amac::engine::run_amac;

    fn chains(n: usize) -> Vec<usize> {
        (0..n).map(|i| 1 + (i * 31) % 9).collect()
    }

    fn fold_outputs(out: &RunOutput<ChainOp>) -> (u64, Vec<u64>) {
        let mut merged = vec![0u64; out.ops[0].outputs.len()];
        let mut checksum = 0u64;
        for op in &out.ops {
            checksum = checksum.wrapping_add(op.checksum);
            for (m, &v) in merged.iter_mut().zip(&op.outputs) {
                *m += v; // each slot written by exactly one worker
            }
        }
        (checksum, merged)
    }

    #[test]
    fn all_schedulings_match_the_single_thread_executor() {
        let ch = chains(40_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        let mut reference = ChainOp::new(&ch);
        run_amac(&mut reference, &inputs, 10);

        for scheduling in [Scheduling::StaticChunk, Scheduling::SharedCursor, Scheduling::WorkSteal]
        {
            let cfg =
                MorselConfig { threads: 4, morsel_tuples: 1024, scheduling, auto_tune: false };
            let out = execute(&inputs, Technique::Amac, TuningParams::default(), &cfg, |_| {
                ChainOp::new(&ch)
            });
            let (checksum, merged) = fold_outputs(&out);
            assert_eq!(checksum, reference.checksum, "{scheduling:?}");
            assert_eq!(merged, reference.outputs, "{scheduling:?}");
            assert_eq!(out.report.stats.lookups, ch.len() as u64, "{scheduling:?}");
            assert_eq!(out.report.morsels(), out.report.morsel_ns.count(), "{scheduling:?}");
        }
    }

    #[test]
    fn every_technique_completes_all_lookups() {
        let ch = chains(10_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        for technique in Technique::ALL {
            let cfg = MorselConfig { threads: 3, morsel_tuples: 512, ..Default::default() };
            let out =
                execute(&inputs, technique, TuningParams::paper_best(technique), &cfg, |_| {
                    ChainOp::new(&ch)
                });
            assert_eq!(out.report.stats.lookups, ch.len() as u64, "{technique}");
            assert_eq!(out.ops.len(), 3, "{technique}");
        }
    }

    #[test]
    fn positional_skew_triggers_steals() {
        // All the work sits in the first quarter of the input: static
        // chunking would leave three threads idle while thread 0 grinds.
        let n = 8_000;
        let ch: Vec<usize> = (0..n).map(|i| if i < n / 4 { 64 } else { 1 }).collect();
        let inputs: Vec<usize> = (0..n).collect();
        let cfg = MorselConfig { threads: 4, morsel_tuples: 256, ..Default::default() };
        let out =
            execute(&inputs, Technique::Amac, TuningParams::default(), &cfg, |_| ChainOp::new(&ch));
        assert_eq!(out.report.stats.lookups, n as u64);
        assert!(out.report.steals() > 0, "skewed run must redistribute morsels");
    }

    #[test]
    fn static_chunks_never_steal() {
        let ch = chains(4_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        let out = execute(
            &inputs,
            Technique::Amac,
            TuningParams::default(),
            &MorselConfig::static_chunks(4),
            |_| ChainOp::new(&ch),
        );
        assert_eq!(out.report.steals(), 0);
        assert_eq!(out.report.morsels(), 4, "one chunk per thread");
        assert_eq!(out.report.stats.lookups, ch.len() as u64);
    }

    #[test]
    fn auto_tune_reports_a_bounded_window() {
        let ch = chains(30_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        let cfg = MorselConfig { threads: 2, auto_tune: true, ..Default::default() };
        let out =
            execute(&inputs, Technique::Amac, TuningParams::default(), &cfg, |_| ChainOp::new(&ch));
        let m = out.report.in_flight;
        assert!((4..=64).contains(&m), "auto-tuned window {m} out of bounds");
        assert_eq!(out.report.stats.lookups, ch.len() as u64);
    }

    #[test]
    fn empty_input_and_oversubscription() {
        let ch: Vec<usize> = vec![];
        let inputs: Vec<usize> = vec![];
        let out = execute(
            &inputs,
            Technique::Amac,
            TuningParams::default(),
            &MorselConfig::with_threads(8),
            |_| ChainOp::new(&ch),
        );
        assert_eq!(out.report.stats, EngineStats::default());
        assert_eq!(out.report.tuples, 0);

        let ch = chains(5);
        let inputs: Vec<usize> = (0..5).collect();
        let out = execute(
            &inputs,
            Technique::Amac,
            TuningParams::default(),
            &MorselConfig::with_threads(16),
            |_| ChainOp::new(&ch),
        );
        assert_eq!(out.report.stats.lookups, 5);
    }

    #[test]
    fn to_json_reports_counters_and_an_empty_profile_when_untraced() {
        let ch = chains(2_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        let cfg = MorselConfig { threads: 2, morsel_tuples: 512, ..Default::default() };
        let out =
            execute(&inputs, Technique::Amac, TuningParams::default(), &cfg, |_| ChainOp::new(&ch));
        let js = out.report.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"lookups\":2000"), "{js}");
        assert!(js.contains("\"threads\":[{"), "{js}");
        // ChainOp never installs a tracer, so the profile must be empty
        // and the trace counters zero.
        assert!(js.contains("\"stall_profile\":[]"), "{js}");
        assert!(js.contains("\"trace_events\":0"), "{js}");
        assert!(!out.report.trace.enabled());
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let ch = chains(20_000);
        let inputs: Vec<usize> = (0..ch.len()).collect();
        let cfg = MorselConfig { threads: 4, morsel_tuples: 1000, ..Default::default() };
        let out =
            execute(&inputs, Technique::Amac, TuningParams::default(), &cfg, |_| ChainOp::new(&ch));
        let r = &out.report;
        assert_eq!(r.per_thread.len(), 4);
        assert_eq!(r.per_thread.iter().map(|t| t.tuples).sum::<u64>(), 20_000);
        assert_eq!(r.tuples, 20_000);
        assert!(r.throughput() > 0.0);
        assert!(r.imbalance() >= 1.0 - 1e-9);
        assert!(r.max_finished_at() <= r.seconds + 1e-3);
        for t in &r.per_thread {
            assert!(t.busy_seconds <= t.finished_at + 1e-9);
        }
    }
}
