//! Synthetic lookup op for the runtime's own tests (mirrors the core
//! crate's private test util; no real memory is chased).

use amac::engine::{LookupOp, Step};

/// Lookup `i` takes `chains[i]` steps, then adds `10 * chains[i]` to an
/// order-independent checksum and records the value at output slot `i`.
pub struct ChainOp {
    chains: Vec<usize>,
    /// Output slot per input index.
    pub outputs: Vec<u64>,
    /// Wrapping sum of every produced output (order-independent).
    pub checksum: u64,
}

/// Per-lookup state for [`ChainOp`].
#[derive(Default)]
pub struct ChainState {
    idx: usize,
    remaining: usize,
}

impl ChainOp {
    /// Op over the given chain lengths.
    pub fn new(chains: &[usize]) -> Self {
        ChainOp { chains: chains.to_vec(), outputs: vec![0; chains.len()], checksum: 0 }
    }
}

impl LookupOp for ChainOp {
    type Input = usize;
    type State = ChainState;

    fn budgeted_steps(&self) -> usize {
        4
    }

    fn start(&mut self, input: usize, state: &mut ChainState) {
        assert!(self.chains[input] >= 1, "chains must need at least one step");
        state.idx = input;
        state.remaining = self.chains[input];
    }

    fn step(&mut self, state: &mut ChainState) -> Step {
        if state.remaining > 1 {
            state.remaining -= 1;
            Step::Continue
        } else {
            let v = 10 * self.chains[state.idx] as u64;
            self.outputs[state.idx] = v;
            self.checksum = self.checksum.wrapping_add(v);
            Step::Done
        }
    }
}
