//! A resumable AMAC executor.
//!
//! [`amac::engine::run_amac`] drains its in-flight window when the input
//! slice ends — fine for one big chunk, wasteful when the input arrives
//! as a stream of small morsels: every boundary would empty and refill
//! the window, dropping the sustained miss-level parallelism the paper is
//! about (a ~32K-tuple morsel with `M = 10` would pay that drain bubble
//! every few microseconds). [`AmacSession`] owns the circular buffer
//! *across* calls: [`feed`](AmacSession::feed) consumes a morsel and
//! returns with the window still full, and only the final
//! [`drain`](AmacSession::drain) retires the remaining lookups.
//!
//! The session is generic over any [`LookupOp`], including fused
//! multi-operator pipelines (`amac::engine::pipeline::Fused`): a slot
//! mid-way through a probe→group-by chain survives morsel boundaries
//! exactly like a plain probe slot, so whole-pipeline windows persist
//! across the run too.

use amac::engine::{EngineStats, LookupOp, Step};

/// Persistent AMAC circular buffer (the paper's Fig. 4 state, owned by
/// one worker thread for the whole run).
pub struct AmacSession<O: LookupOp> {
    states: Vec<O::State>,
    active: Vec<bool>,
    k: usize,
    in_flight: usize,
    /// High-water mark of activated slots (max slot index started + 1).
    /// `run_amac` clamps its window to `inputs.len()`, so a one-shot run
    /// over fewer inputs than `M` never *visits* — and never charges idle
    /// time for — slots beyond the input count. The drain rotation wraps
    /// at this mark instead of `M` so a session run over the same inputs
    /// charges bit-identical `sim_cycles`; reset (with `k`) once the
    /// window fully drains, keeping later refills aligned with a fresh
    /// run.
    hi: usize,
    /// Sum of `in_flight` sampled at every executed slot rotation — the
    /// numerator of [`mean_occupancy`](AmacSession::mean_occupancy).
    occ_sum: u64,
    /// Slot rotations executed (starts + step attempts).
    occ_ticks: u64,
}

impl<O: LookupOp> AmacSession<O> {
    /// A session with an `m`-slot window (`m >= 1` enforced).
    pub fn new(m: usize) -> Self {
        let m = m.max(1);
        let mut states = Vec::with_capacity(m);
        states.resize_with(m, O::State::default);
        AmacSession {
            states,
            active: vec![false; m],
            k: 0,
            in_flight: 0,
            hi: 0,
            occ_sum: 0,
            occ_ticks: 0,
        }
    }

    /// Window capacity (the paper's `M`).
    pub fn capacity(&self) -> usize {
        self.states.len()
    }

    /// Lookups currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Mean window occupancy: average `in_flight` over every executed slot
    /// rotation so far (0 before any work). A value near
    /// [`capacity`](AmacSession::capacity) means the engine sustained full
    /// miss-level parallelism; the gap to `capacity` is the MLP lost to
    /// under-filled windows (small feeds, drain tails). Deterministic — it
    /// counts rotations, not time — so serving benches can gate on it.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occ_ticks == 0 {
            0.0
        } else {
            self.occ_sum as f64 / self.occ_ticks as f64
        }
    }

    #[inline(always)]
    fn tick(&mut self) {
        self.occ_sum += self.in_flight as u64;
        self.occ_ticks += 1;
    }

    /// Execute every lookup of `inputs`, leaving up to `M` of them in
    /// flight. Counters accumulate into `stats` under the same convention
    /// as [`amac::engine::run_amac`].
    pub fn feed(&mut self, op: &mut O, inputs: &[O::Input], stats: &mut EngineStats) {
        let m = self.states.len();
        let pf = op.issues_prefetches() as u64;
        let mut next = 0usize;
        // Fill any empty slots (first morsel of the run, or after a drain).
        if self.in_flight < m {
            for slot in 0..m {
                if next == inputs.len() {
                    // Morsel boundaries are AMU commit points: the next
                    // feed's lanes must not coalesce against this one's
                    // in-flight loads.
                    op.commit_point();
                    op.flush_observed(stats);
                    return;
                }
                if !self.active[slot] {
                    op.start(inputs[next], &mut self.states[slot]);
                    stats.stages += 1;
                    stats.prefetches += pf;
                    next += 1;
                    self.active[slot] = true;
                    self.in_flight += 1;
                    self.hi = self.hi.max(slot + 1);
                    self.tick();
                }
            }
        }
        // Steady state: every slot is occupied while input remains, so a
        // finished slot immediately starts the next lookup (the paper's
        // merged terminal+initial stage) and the window never drains.
        while next < inputs.len() {
            match op.step(&mut self.states[self.k]) {
                Step::Continue => {
                    stats.stages += 1;
                    stats.prefetches += pf;
                }
                Step::Blocked => {
                    stats.latch_retries += 1;
                }
                s @ (Step::Done | Step::Failed) => {
                    stats.stages += 1;
                    stats.lookups += 1;
                    stats.failed_lookups += (s == Step::Failed) as u64;
                    op.start(inputs[next], &mut self.states[self.k]);
                    stats.stages += 1;
                    stats.prefetches += pf;
                    next += 1;
                }
            }
            self.tick();
            self.k += 1;
            if self.k == m {
                self.k = 0;
            }
        }
        op.commit_point();
        op.flush_observed(stats);
    }

    /// Retire every lookup still in flight (the end-of-run epilogue).
    pub fn drain(&mut self, op: &mut O, stats: &mut EngineStats) {
        let _ = self.drain_budgeted(op, stats, usize::MAX);
    }

    /// [`drain`](AmacSession::drain) with a rotation budget: give up after
    /// `max_rotations` slot visits (idle status checks included) and
    /// return `false` with lookups still in flight. A lane that can never
    /// make progress (a wedged latch, a livelocked op) therefore costs a
    /// bounded amount of work per call instead of spinning the caller
    /// forever — the serving layer's pump budget is built on this.
    /// Counters are flushed on both outcomes, so partial drains stay
    /// ledger-exact. Returns `true` once the window is empty.
    pub fn drain_budgeted(
        &mut self,
        op: &mut O,
        stats: &mut EngineStats,
        max_rotations: usize,
    ) -> bool {
        let pf = op.issues_prefetches() as u64;
        let mut rotations = 0usize;
        while self.in_flight > 0 {
            if rotations == max_rotations {
                op.flush_observed(stats);
                return false;
            }
            rotations += 1;
            if self.active[self.k] {
                match op.step(&mut self.states[self.k]) {
                    Step::Continue => {
                        stats.stages += 1;
                        stats.prefetches += pf;
                    }
                    Step::Blocked => {
                        stats.latch_retries += 1;
                    }
                    s @ (Step::Done | Step::Failed) => {
                        stats.stages += 1;
                        stats.lookups += 1;
                        stats.failed_lookups += (s == Step::Failed) as u64;
                        self.active[self.k] = false;
                        self.in_flight -= 1;
                    }
                }
                self.tick();
            } else {
                // Drained slot: the rotation's status check still costs a
                // tick of simulated time (see `LookupOp::sim_idle`) —
                // matching `run_amac`'s drain loop exactly, so a morsel
                // session and a one-shot run charge identical stalls.
                op.sim_idle(1);
            }
            // Wrap at the activated high-water mark, not `M`: `run_amac`
            // clamps its window to the input count, so slots that never
            // held a lookup must not be visited (each visit would charge
            // a phantom idle tick the one-shot executor never pays).
            self.k += 1;
            if self.k >= self.hi {
                self.k = 0;
            }
        }
        // Fully drained: re-align with a fresh run so the next feed's
        // fill starts at slot 0 of an empty window.
        self.k = 0;
        self.hi = 0;
        op.flush_observed(stats);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testop::ChainOp;
    use amac::engine::run_amac;

    #[test]
    fn morsel_feed_matches_single_run_exactly() {
        let chains: Vec<usize> = (0..500).map(|i| 1 + (i * 13) % 7).collect();
        let inputs: Vec<usize> = (0..chains.len()).collect();

        let mut whole = ChainOp::new(&chains);
        let want = run_amac(&mut whole, &inputs, 10);

        let mut op = ChainOp::new(&chains);
        let mut session = AmacSession::new(10);
        let mut stats = EngineStats::default();
        for morsel in inputs.chunks(37) {
            session.feed(&mut op, morsel, &mut stats);
        }
        session.drain(&mut op, &mut stats);

        assert_eq!(stats, want, "counters must match the one-shot executor");
        assert_eq!(op.outputs, whole.outputs, "results must match");
    }

    #[test]
    fn window_stays_full_between_morsels() {
        let chains = vec![5usize; 256];
        let inputs: Vec<usize> = (0..256).collect();
        let mut op = ChainOp::new(&chains);
        let mut session = AmacSession::new(8);
        let mut stats = EngineStats::default();
        for morsel in inputs.chunks(32) {
            session.feed(&mut op, morsel, &mut stats);
            assert_eq!(session.in_flight(), 8, "window drained at a morsel boundary");
        }
        session.drain(&mut op, &mut stats);
        assert_eq!(session.in_flight(), 0);
        assert_eq!(stats.lookups, 256);
    }

    #[test]
    fn morsel_smaller_than_window() {
        let chains = vec![3usize; 20];
        let inputs: Vec<usize> = (0..20).collect();
        let mut op = ChainOp::new(&chains);
        let mut session = AmacSession::new(16);
        let mut stats = EngineStats::default();
        for morsel in inputs.chunks(4) {
            session.feed(&mut op, morsel, &mut stats);
        }
        session.drain(&mut op, &mut stats);
        assert_eq!(stats.lookups, 20);
        assert_eq!(op.outputs.len(), 20);
    }

    #[test]
    fn occupancy_tracks_window_fill() {
        // Long feed: occupancy should sit at (nearly) full capacity.
        let chains = vec![4usize; 4096];
        let inputs: Vec<usize> = (0..4096).collect();
        let mut op = ChainOp::new(&chains);
        let mut session = AmacSession::new(8);
        let mut stats = EngineStats::default();
        for morsel in inputs.chunks(256) {
            session.feed(&mut op, morsel, &mut stats);
        }
        let fed = session.mean_occupancy();
        assert!(fed > 7.0 && fed <= 8.0, "steady-state occupancy {fed} not near M=8");
        // The drain tail decays 8→0 and drags the mean down, but never
        // below half the window on this workload.
        session.drain(&mut op, &mut stats);
        let drained = session.mean_occupancy();
        assert!(drained > 4.0 && drained <= fed, "post-drain occupancy {drained}");
        // Deterministic: the same schedule reproduces the same occupancy.
        let mut op2 = ChainOp::new(&chains);
        let mut s2 = AmacSession::new(8);
        let mut st2 = EngineStats::default();
        for morsel in inputs.chunks(256) {
            s2.feed(&mut op2, morsel, &mut st2);
        }
        s2.drain(&mut op2, &mut st2);
        assert_eq!(s2.mean_occupancy().to_bits(), drained.to_bits());
    }

    #[test]
    fn budgeted_drain_gives_up_on_a_wedged_op_and_resumes() {
        /// An op whose lookups block forever until `release` flips.
        struct Wedge {
            release: bool,
        }
        impl LookupOp for Wedge {
            type Input = usize;
            type State = usize;
            fn budgeted_steps(&self) -> usize {
                1
            }
            fn start(&mut self, _input: usize, _state: &mut usize) {}
            fn step(&mut self, _state: &mut usize) -> Step {
                if self.release {
                    Step::Done
                } else {
                    Step::Blocked
                }
            }
        }

        let mut op = Wedge { release: false };
        let mut session: AmacSession<Wedge> = AmacSession::new(4);
        let mut stats = EngineStats::default();
        session.feed(&mut op, &[0, 1, 2, 3], &mut stats);
        // The wedged window burns exactly its budget and reports failure.
        assert!(!session.drain_budgeted(&mut op, &mut stats, 100));
        assert_eq!(session.in_flight(), 4, "nothing retired while wedged");
        assert_eq!(stats.latch_retries, 100, "every budgeted rotation was a spin");
        // Once the latch frees, the same session drains to completion.
        op.release = true;
        assert!(session.drain_budgeted(&mut op, &mut stats, 100));
        assert_eq!(session.in_flight(), 0);
        assert_eq!(stats.lookups, 4);
    }

    #[test]
    fn drained_window_idle_ticks_match_the_one_shot_executor() {
        /// [`ChainOp`]-shaped op that also counts `sim_idle` ticks, so the
        /// drain rotation's idle charging is observable.
        struct IdleChain {
            chains: Vec<usize>,
            outputs: Vec<u64>,
            idle: u64,
        }
        #[derive(Default)]
        struct S {
            idx: usize,
            remaining: usize,
        }
        impl LookupOp for IdleChain {
            type Input = usize;
            type State = S;
            fn budgeted_steps(&self) -> usize {
                4
            }
            fn start(&mut self, input: usize, state: &mut S) {
                state.idx = input;
                state.remaining = self.chains[input];
            }
            fn step(&mut self, state: &mut S) -> Step {
                if state.remaining > 1 {
                    state.remaining -= 1;
                    Step::Continue
                } else {
                    self.outputs[state.idx] = 10 * self.chains[state.idx] as u64;
                    Step::Done
                }
            }
            fn sim_idle(&mut self, ticks: u64) {
                self.idle += ticks;
            }
        }
        let mk = |chains: &[usize]| IdleChain {
            chains: chains.to_vec(),
            outputs: vec![0; chains.len()],
            idle: 0,
        };

        // Fewer inputs than M: `run_amac` clamps its window to 4 slots,
        // so its drain loop never visits — or charges idle time for — the
        // 6 slots a 10-wide session also leaves empty. The session must
        // agree tick for tick (the old rotation wrapped at M and charged
        // a phantom idle tick per empty slot per rotation).
        let chains: Vec<usize> = vec![3, 1, 4, 2];
        let inputs: Vec<usize> = (0..chains.len()).collect();
        let mut whole = mk(&chains);
        let want = run_amac(&mut whole, &inputs, 10);

        let mut op = mk(&chains);
        let mut session = AmacSession::new(10);
        let mut stats = EngineStats::default();
        session.feed(&mut op, &inputs, &mut stats);
        session.drain(&mut op, &mut stats);
        assert_eq!(stats, want, "counters diverged from the one-shot executor");
        assert_eq!(op.idle, whole.idle, "drained-window idle ticks diverged");
        assert_eq!(op.outputs, whole.outputs);

        // The reset on full drain keeps a *reused* session aligned too.
        let mut whole2 = mk(&chains);
        let want2 = run_amac(&mut whole2, &inputs, 10);
        let before = op.idle;
        let mut stats2 = EngineStats::default();
        session.feed(&mut op, &inputs, &mut stats2);
        session.drain(&mut op, &mut stats2);
        assert_eq!(stats2, want2, "second use of a drained session diverged");
        assert_eq!(op.idle - before, whole2.idle, "idle ticks drifted on reuse");
    }

    #[test]
    fn occupancy_zero_before_any_work() {
        let session: AmacSession<ChainOp> = AmacSession::new(4);
        assert_eq!(session.mean_occupancy(), 0.0);
    }

    #[test]
    fn empty_feed_and_drain_are_noops() {
        let chains: Vec<usize> = vec![];
        let mut op = ChainOp::new(&chains);
        let mut session: AmacSession<ChainOp> = AmacSession::new(4);
        let mut stats = EngineStats::default();
        session.feed(&mut op, &[], &mut stats);
        session.drain(&mut op, &mut stats);
        assert_eq!(stats, EngineStats::default());
    }
}
