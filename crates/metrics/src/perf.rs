//! Hardware performance counters via `perf_event_open(2)`.
//!
//! Tables 3 and 4 of the paper use instruction counts, IPC and L1-D MSHR
//! hits from the Xeon's PMU. Containers routinely deny `perf_event_open`
//! (`perf_event_paranoid`, seccomp), so every API here is fallible and the
//! bench binaries fall back to the software proxies the executors count
//! into `EngineStats` (stages, no-ops, prefetches per lookup), noting the
//! substitution in their output.
//!
//! Only `libc` types and the raw syscall are used; no perf crate.

use std::io;

/// Which hardware event to count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Retired instructions.
    Instructions,
    /// Core cycles.
    Cycles,
    /// Last-level-cache misses (closest portable analogue to the paper's
    /// off-chip access counts).
    LlcMisses,
    /// L1-D read misses (the MLP-limiting resource in the paper's
    /// single-thread analysis).
    L1dMisses,
}

impl Event {
    fn type_config(self) -> (u32, u64) {
        // Values from linux/perf_event.h.
        const PERF_TYPE_HARDWARE: u32 = 0;
        const PERF_TYPE_HW_CACHE: u32 = 3;
        const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
        const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
        const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;
        const PERF_COUNT_HW_CACHE_L1D: u64 = 0;
        const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
        const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;
        match self {
            Event::Instructions => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            Event::Cycles => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
            Event::LlcMisses => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
            Event::L1dMisses => (
                PERF_TYPE_HW_CACHE,
                PERF_COUNT_HW_CACHE_L1D
                    | (PERF_COUNT_HW_CACHE_OP_READ << 8)
                    | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
            ),
        }
    }
}

/// An open per-thread hardware counter.
#[derive(Debug)]
pub struct Counter {
    fd: i32,
}

impl Counter {
    /// Open a counter for `event` on the calling thread.
    ///
    /// Returns `Err` when the kernel refuses (the common containerized
    /// case); callers must treat that as "profile unavailable", not fatal.
    pub fn open(event: Event) -> io::Result<Counter> {
        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PerfEventAttr {
            type_: u32,
            size: u32,
            config: u64,
            sample: u64,
            sample_type: u64,
            read_format: u64,
            flags: u64,
            wakeup: u32,
            bp_type: u32,
            bp_addr: u64,
            bp_len: u64,
            branch_sample_type: u64,
            sample_regs_user: u64,
            sample_stack_user: u32,
            clockid: i32,
            sample_regs_intr: u64,
            aux_watermark: u32,
            sample_max_stack: u16,
            reserved_2: u16,
            aux_sample_size: u32,
            reserved_3: u32,
        }
        let (type_, config) = event.type_config();
        let mut attr: PerfEventAttr = unsafe { core::mem::zeroed() };
        attr.type_ = type_;
        attr.size = core::mem::size_of::<PerfEventAttr>() as u32;
        attr.config = config;
        // flags bit 0: disabled=1; bit 5: exclude_kernel; bit 6: exclude_hv.
        attr.flags = 1 | (1 << 5) | (1 << 6);
        let fd = unsafe {
            libc::syscall(
                libc::SYS_perf_event_open,
                &attr as *const PerfEventAttr,
                0,     // pid: calling thread
                -1i32, // cpu: any
                -1i32, // group_fd
                0u64,  // flags
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Counter { fd: fd as i32 })
    }

    /// Reset and start counting.
    pub fn start(&self) -> io::Result<()> {
        const PERF_EVENT_IOC_ENABLE: libc::c_ulong = 0x2400;
        const PERF_EVENT_IOC_RESET: libc::c_ulong = 0x2403;
        unsafe {
            if libc::ioctl(self.fd, PERF_EVENT_IOC_RESET, 0) < 0 {
                return Err(io::Error::last_os_error());
            }
            if libc::ioctl(self.fd, PERF_EVENT_IOC_ENABLE, 0) < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }

    /// Stop counting and read the value.
    pub fn stop(&self) -> io::Result<u64> {
        const PERF_EVENT_IOC_DISABLE: libc::c_ulong = 0x2401;
        unsafe {
            if libc::ioctl(self.fd, PERF_EVENT_IOC_DISABLE, 0) < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        let mut value = 0u64;
        let n = unsafe { libc::read(self.fd, &mut value as *mut u64 as *mut libc::c_void, 8) };
        if n != 8 {
            return Err(io::Error::last_os_error());
        }
        Ok(value)
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// Measure instructions and cycles around `f`, if the PMU is accessible.
///
/// Returns `(result, Some((instructions, cycles)))` on success, or
/// `(result, None)` when counters are unavailable.
pub fn measure_instructions<T>(f: impl FnOnce() -> T) -> (T, Option<(u64, u64)>) {
    let instr = Counter::open(Event::Instructions);
    let cyc = Counter::open(Event::Cycles);
    match (instr, cyc) {
        (Ok(i), Ok(c)) => {
            if i.start().is_err() || c.start().is_err() {
                return (f(), None);
            }
            let out = f();
            match (i.stop(), c.stop()) {
                (Ok(iv), Ok(cv)) => (out, Some((iv, cv))),
                _ => (out, None),
            }
        }
        _ => (f(), None),
    }
}

/// Whether hardware counters are available in this environment.
pub fn available() -> bool {
    Counter::open(Event::Instructions).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_never_panics_and_returns_result() {
        let (v, counters) = measure_instructions(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(v, (0..10_000u64).sum());
        if let Some((instr, cycles)) = counters {
            assert!(instr > 0, "zero instructions counted");
            assert!(cycles > 0, "zero cycles counted");
        }
        // None is acceptable: containers commonly deny perf_event_open.
    }

    #[test]
    fn availability_probe_is_consistent() {
        let a = available();
        let b = available();
        assert_eq!(a, b);
    }

    #[test]
    fn event_configs_are_distinct() {
        use std::collections::HashSet;
        let set: HashSet<(u32, u64)> =
            [Event::Instructions, Event::Cycles, Event::LlcMisses, Event::L1dMisses]
                .into_iter()
                .map(|e| e.type_config())
                .collect();
        assert_eq!(set.len(), 4);
    }
}
