//! Log-scale latency histograms for the parallel runtime.
//!
//! The morsel runtime records one observation per morsel per thread;
//! power-of-two buckets keep recording at a handful of instructions while
//! still resolving the tail (p95/p99) well enough to spot a straggler
//! thread or a latch convoy.

/// A histogram over `u64` observations (nanoseconds by convention) with
/// one bucket per power of two.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one (per-thread aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket holding quantile `q` (`0.0..=1.0`); the
    /// resolution is the bucket width (a factor of two).
    ///
    /// Returns `None` on an empty histogram: a percentile of zero
    /// observations is not 0 ns, it does not exist, and the serving layer
    /// quotes these numbers as SLO evidence — an implicit `0` would read
    /// as an impossibly good p99. Callers that want the old lenient
    /// behaviour write `quantile(q).unwrap_or(0)` and own that choice.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if b == 0 { 0 } else { 1u64 << b });
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 0.0);
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());
        assert!(h.quantile(1.0).unwrap() >= 100_000 / 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None, "p50 of nothing must not read as 0 ns");
        assert_eq!(h.quantile(0.99), None, "p99 of nothing must not read as 0 ns");
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn one_observation_makes_percentiles_exist() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        assert!(h.quantile(0.99).is_some());
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0));
    }
}
