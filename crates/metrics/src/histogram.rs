//! Log-scale latency histograms for the parallel runtime.
//!
//! The morsel runtime records one observation per morsel per thread;
//! power-of-two buckets keep recording at a handful of instructions while
//! still resolving the tail (p95/p99) well enough to spot a straggler
//! thread or a latch convoy.

/// A histogram over `u64` observations (nanoseconds by convention) with
/// one bucket per power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one (per-thread aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket holding quantile `q` (`0.0..=1.0`),
    /// clamped to the largest observation; the resolution is the bucket
    /// width (a factor of two).
    ///
    /// The clamp removes the bucket-bound bias on small histograms: a
    /// single observation of 7 ns lives in the `(4, 8]` bucket, and the
    /// raw bound would quote every percentile — including p100 — as 8 ns,
    /// *above* anything ever observed. Clamping to [`max`](Self::max)
    /// keeps every quantile inside the observed range (a one-sample
    /// histogram reports that sample exactly) and preserves monotonicity
    /// in `q`, since `min` by a constant keeps the bucket bounds ordered.
    ///
    /// Returns `None` on an empty histogram: a percentile of zero
    /// observations is not 0 ns, it does not exist, and the serving layer
    /// quotes these numbers as SLO evidence — an implicit `0` would read
    /// as an impossibly good p99. Callers that want the old lenient
    /// behaviour write `quantile(q).unwrap_or(0)` and own that choice.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if b == 0 { 0 } else { (1u64 << b).min(self.max) });
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 0.0);
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());
        assert!(h.quantile(1.0).unwrap() >= 100_000 / 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None, "p50 of nothing must not read as 0 ns");
        assert_eq!(h.quantile(0.99), None, "p99 of nothing must not read as 0 ns");
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn one_observation_makes_percentiles_exist() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        assert!(h.quantile(0.99).is_some());
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // The bucket-bound bias this clamp removes: one observation of 7
        // used to report p50 = p100 = 8, above anything observed.
        for v in [0u64, 1, 3, 7, 100, 1 << 40] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "q={q} v={v}");
            }
        }
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantiles_are_monotone_and_bounded(
            values in prop::collection::vec(0u64..1 << 48, 1..64),
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let p50 = h.quantile(0.5).unwrap();
            let p100 = h.quantile(1.0).unwrap();
            prop_assert!(p100 >= p50, "p100 {p100} < p50 {p50}");
            prop_assert_eq!(p100, h.max(), "p100 must be the largest observation");
            let mut prev = h.quantile(0.0).unwrap();
            for i in 1..=10u32 {
                let q = h.quantile(f64::from(i) / 10.0).unwrap();
                prop_assert!(q >= prev, "quantile not monotone at q={}", i);
                prop_assert!(q <= h.max(), "quantile above max at q={}", i);
                prev = q;
            }
        }

        #[test]
        fn merge_is_commutative(
            xs in prop::collection::vec(0u64..1 << 48, 0..48),
            ys in prop::collection::vec(0u64..1 << 48, 0..48),
        ) {
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            for &v in &xs {
                a.record(v);
            }
            for &v in &ys {
                b.record(v);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba, "merge must be order-independent");
            prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
            if ab.count() > 0 {
                prop_assert_eq!(ab.quantile(1.0), ba.quantile(1.0));
                prop_assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
            }
        }
    }
}
