//! Cycle and wall-clock timing.
//!
//! The paper's primary metric is *cycles per tuple*. On x86_64 we read the
//! TSC directly (`rdtsc` — constant-rate on every CPU of the last decade,
//! so it measures reference cycles). On other targets we fall back to
//! nanoseconds from [`std::time::Instant`], which keeps the relative
//! comparisons intact.

use std::time::Instant;

/// Read the current cycle counter (TSC on x86_64; nanoseconds elsewhere).
#[inline(always)]
pub fn cycles_now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// A running timer that captures both cycles and wall time.
#[derive(Debug, Clone, Copy)]
pub struct CycleTimer {
    start_cycles: u64,
    start_wall: Instant,
}

impl CycleTimer {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        CycleTimer { start_wall: Instant::now(), start_cycles: cycles_now() }
    }

    /// Cycles elapsed since `start`.
    #[inline]
    pub fn cycles(&self) -> u64 {
        cycles_now().saturating_sub(self.start_cycles)
    }

    /// Seconds elapsed since `start`.
    #[inline]
    pub fn seconds(&self) -> f64 {
        self.start_wall.elapsed().as_secs_f64()
    }

    /// Cycles per item for a run that processed `n` items.
    #[inline]
    pub fn cycles_per(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.cycles() as f64 / n as f64
    }

    /// Items per second for a run that processed `n` items.
    #[inline]
    pub fn throughput(&self, n: usize) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            return 0.0;
        }
        n as f64 / s
    }
}

/// Measure `f`, returning its result plus (cycles, seconds).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64, f64) {
    let t = CycleTimer::start();
    let out = f();
    (out, t.cycles(), t.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_are_monotonic_nondecreasing() {
        let a = cycles_now();
        let b = cycles_now();
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_positive_duration() {
        let t = CycleTimer::start();
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        assert!(t.cycles() > 0);
        assert!(t.seconds() >= 0.0);
    }

    #[test]
    fn cycles_per_and_throughput() {
        let t = CycleTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.cycles_per(1000) > 0.0);
        assert_eq!(t.cycles_per(0), 0.0);
        let tput = t.throughput(1_000_000);
        assert!(tput > 0.0 && tput.is_finite());
    }

    #[test]
    fn measure_returns_result() {
        let (v, cyc, secs) = measure(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(cyc > 0 || secs >= 0.0);
    }
}
