//! Software execution profiles.
//!
//! The paper's Figure 2 explains GP/SPP's losses through *no-op code
//! stages* and *bailouts*; Table 3 explains them through instruction
//! overhead. The executors in `amac::engine` count these events
//! directly; this module is the shared accounting type.

/// Event counters accumulated by an executor over one run.
///
/// All counters are plain `u64`s bumped on the (single-threaded) executor
/// hot path; multi-threaded drivers keep one profile per thread and
/// [`merge`](ExecProfile::merge) them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Lookups completed.
    pub lookups: u64,
    /// Code stages executed that advanced a lookup (including the stage
    /// that starts it).
    pub stages: u64,
    /// Stage slots visited for lookups that had already finished — the gray
    /// "no-operation" boxes of Fig. 2 (GP/SPP only).
    pub noops: u64,
    /// Lookups that exceeded the static stage budget N and had to finish
    /// sequentially (GP/SPP only).
    pub bailouts: u64,
    /// Extra stages executed inside bailout code, without prefetch overlap.
    pub bailout_stages: u64,
    /// Latch acquisition attempts that failed and were retried (AMAC:
    /// deferred retry; baseline/GP/SPP: in-place spin iterations).
    pub latch_retries: u64,
    /// Prefetch instructions issued.
    pub prefetches: u64,
}

impl ExecProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another profile into this one (for per-thread aggregation).
    pub fn merge(&mut self, other: &ExecProfile) {
        self.lookups += other.lookups;
        self.stages += other.stages;
        self.noops += other.noops;
        self.bailouts += other.bailouts;
        self.bailout_stages += other.bailout_stages;
        self.latch_retries += other.latch_retries;
        self.prefetches += other.prefetches;
    }

    /// Stages (useful + no-op + bailout) executed per completed lookup —
    /// the software proxy for the paper's instructions-per-tuple metric.
    pub fn work_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.stages + self.noops + self.bailout_stages) as f64 / self.lookups as f64
    }

    /// Fraction of visited stage slots that were wasted no-ops.
    pub fn noop_fraction(&self) -> f64 {
        let total = self.stages + self.noops;
        if total == 0 {
            return 0.0;
        }
        self.noops as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = ExecProfile {
            lookups: 1,
            stages: 2,
            noops: 3,
            bailouts: 4,
            bailout_stages: 5,
            latch_retries: 6,
            prefetches: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(
            a,
            ExecProfile {
                lookups: 2,
                stages: 4,
                noops: 6,
                bailouts: 8,
                bailout_stages: 10,
                latch_retries: 12,
                prefetches: 14,
            }
        );
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let p = ExecProfile::new();
        assert_eq!(p.work_per_lookup(), 0.0);
        assert_eq!(p.noop_fraction(), 0.0);
    }

    #[test]
    fn work_per_lookup_counts_all_stage_kinds() {
        let p = ExecProfile {
            lookups: 10,
            stages: 40,
            noops: 10,
            bailout_stages: 10,
            ..Default::default()
        };
        assert!((p.work_per_lookup() - 6.0).abs() < 1e-9);
        assert!((p.noop_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn clone_and_default_are_zeroed() {
        let p = ExecProfile::default();
        assert_eq!(p.lookups + p.stages + p.noops + p.prefetches, 0);
        let q = p;
        assert_eq!(p, q);
    }
}
