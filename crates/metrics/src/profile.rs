//! Exact attribution profiles.
//!
//! A [`Profile`] is a deterministic accumulator mapping an `Ord` key to a
//! `u64` weight, with an always-consistent running total. It is the
//! accounting substrate of the tracing layer's stall attribution
//! (`amac_trace` keys it by {operator, tier, address class, chain hop,
//! tenant, shard}) — the conservation proofs there assert that
//! [`total`](Profile::total) equals the engine's gated `sim_stalls`
//! counter, so the profile must never lose or invent a tick. A
//! `BTreeMap` keeps iteration order (and therefore every rendering and
//! export of the profile) independent of insertion order.
//!
//! This module used to hold `ExecProfile`, a seed-era duplicate of the
//! executor counters that `amac::engine::EngineStats` has reported since
//! the executors landed; it was dead code and is gone.

use std::collections::BTreeMap;

/// A deterministic `key → weight` accumulator with a running total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile<K: Ord> {
    cells: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord> Default for Profile<K> {
    fn default() -> Self {
        Profile { cells: BTreeMap::new(), total: 0 }
    }
}

impl<K: Ord> Profile<K> {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute `weight` to `key`. Zero weights are dropped (they carry
    /// no mass, and keeping them out makes `len` count contributing cells
    /// only); the total always matches the sum of the cells.
    pub fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.cells.entry(key).or_insert(0) += weight;
        self.total += weight;
    }

    /// The weight attributed to `key` (0 when absent).
    pub fn get(&self, key: &K) -> u64 {
        self.cells.get(key).copied().unwrap_or(0)
    }

    /// Sum of all attributed weight — the conservation side of the
    /// ledger: always equal to Σ over [`iter`](Profile::iter).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of cells with non-zero weight.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells in key order (deterministic regardless of insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.cells.iter().map(|(k, &v)| (k, v))
    }

    /// Fold another profile into this one.
    pub fn merge(&mut self, other: &Profile<K>)
    where
        K: Clone,
    {
        for (k, v) in other.iter() {
            self.add(k.clone(), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tracks_cells_and_zero_is_dropped() {
        let mut p: Profile<(&str, u32)> = Profile::new();
        p.add(("far", 1), 10);
        p.add(("far", 1), 5);
        p.add(("near", 0), 0);
        assert_eq!(p.get(&("far", 1)), 15);
        assert_eq!(p.get(&("near", 0)), 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.total(), 15);
        assert_eq!(p.iter().map(|(_, v)| v).sum::<u64>(), p.total());
    }

    #[test]
    fn iteration_order_is_key_order_not_insertion_order() {
        let mut p: Profile<u32> = Profile::new();
        for k in [9u32, 2, 7, 1] {
            p.add(k, u64::from(k));
        }
        let keys: Vec<u32> = p.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 7, 9]);
    }

    #[test]
    fn merge_accumulates_and_preserves_total() {
        let mut a: Profile<u8> = Profile::new();
        a.add(1, 3);
        a.add(2, 4);
        let mut b: Profile<u8> = Profile::new();
        b.add(2, 6);
        b.add(3, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is order-independent");
        assert_eq!(ab.total(), a.total() + b.total());
        assert_eq!(ab.get(&2), 10);
    }

    #[test]
    fn empty_profile_reports_nothing() {
        let p: Profile<u64> = Profile::default();
        assert!(p.is_empty());
        assert_eq!((p.len(), p.total()), (0, 0));
    }
}
