//! Host platform description (the analogue of the paper's Table 2).

use std::fmt;

/// Description of the machine the experiments run on.
#[derive(Debug, Clone, Default)]
pub struct Platform {
    /// CPU model string, if discoverable.
    pub cpu_model: String,
    /// Logical CPUs visible to this process.
    pub logical_cpus: usize,
    /// Total system memory in GiB, if discoverable.
    pub mem_gib: f64,
    /// Whether `perf_event_open` hardware counters are usable.
    pub perf_counters: bool,
    /// Target architecture.
    pub arch: &'static str,
}

impl Platform {
    /// Probe the current host.
    pub fn detect() -> Platform {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let mem_gib = std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("MemTotal"))
                    .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<f64>().ok()))
            })
            .map(|kb| kb / 1024.0 / 1024.0)
            .unwrap_or(0.0);
        Platform {
            cpu_model,
            logical_cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            mem_gib,
            perf_counters: crate::perf::available(),
            arch: std::env::consts::ARCH,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Platform (cf. paper Table 2)")?;
        writeln!(f, "  arch           : {}", self.arch)?;
        writeln!(f, "  cpu model      : {}", self.cpu_model)?;
        writeln!(f, "  logical cpus   : {}", self.logical_cpus)?;
        writeln!(f, "  memory         : {:.1} GiB", self.mem_gib)?;
        writeln!(
            f,
            "  hw perf events : {}",
            if self.perf_counters { "yes" } else { "no (software proxies in use)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_populates_fields() {
        let p = Platform::detect();
        assert!(p.logical_cpus >= 1);
        assert!(!p.arch.is_empty());
        let s = p.to_string();
        assert!(s.contains("logical cpus"));
    }
}
