//! Measurement substrate for the AMAC reproduction.
//!
//! The paper reports **cycles per tuple** (rdtsc-based, [`timer`]),
//! **throughput** (tuples/second) and hardware-counter profiles
//! (instructions/tuple, IPC, L1-D MSHR hits — [`perf`], degrading to
//! software proxies where the kernel forbids `perf_event_open`).
//!
//! [`report`] renders the aligned text tables the bench binaries print
//! and the deterministic JSON the trace export path emits, [`profile`]
//! is the exact keyed accumulator behind `amac_trace`'s stall
//! attribution, [`stats`] provides the small statistics used for
//! multi-trial runs, and [`histogram`] holds the log-scale latency
//! histograms the parallel runtime reports per-morsel service times
//! through.

pub mod histogram;
pub mod perf;
pub mod platform;
pub mod profile;
pub mod report;
pub mod stats;
pub mod timer;

pub use histogram::LatencyHistogram;
pub use profile::Profile;
pub use report::{JsonBuf, Table};
pub use stats::Summary;
pub use timer::{cycles_now, CycleTimer};
