//! Measurement substrate for the AMAC reproduction.
//!
//! The paper reports **cycles per tuple** (rdtsc-based, [`timer`]),
//! **throughput** (tuples/second), hardware-counter profiles
//! (instructions/tuple, IPC, L1-D MSHR hits — [`perf`], degrading to
//! software proxies where the kernel forbids `perf_event_open`), and the
//! software-side execution profile that explains *why* GP/SPP lose under
//! irregularity (stage executions, no-ops, bailouts, latch retries —
//! [`profile`]).
//!
//! [`report`] renders the aligned text tables the bench binaries print,
//! [`stats`] provides the small statistics used for multi-trial runs, and
//! [`histogram`] holds the log-scale latency histograms the parallel
//! runtime reports per-morsel service times through.

pub mod histogram;
pub mod perf;
pub mod platform;
pub mod profile;
pub mod report;
pub mod stats;
pub mod timer;

pub use histogram::LatencyHistogram;
pub use profile::ExecProfile;
pub use report::Table;
pub use stats::Summary;
pub use timer::{cycles_now, CycleTimer};
