//! Aligned text tables for the bench binaries.
//!
//! Every figure/table binary prints its series in the same shape the paper
//! reports them (rows = configurations, columns = techniques), via this
//! minimal formatter — no external table crate.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Table { title: title.into(), ..Default::default() }
    }

    /// Set the header row.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn row<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Append a footnote (rendered after the table body).
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(line, "{cell:<w$}");
                } else {
                    let _ = write!(line, "  {cell:>w$}");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a f64 with engineering-friendly precision (3 significant-ish
/// decimals below 10, 1 decimal below 1000, integers above).
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a throughput in millions/second, as the paper's Figures 7–8.
pub fn fmtput(tuples_per_sec: f64) -> String {
    format!("{:.1}M/s", tuples_per_sec / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").header(["cfg", "Baseline", "AMAC"]);
        t.row(["[0,0]", "100", "25"]);
        t.row(["[1,1]", "101.5", "33"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        // title + header + separator + 2 data rows.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric columns: both rows end at the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn empty_and_notes() {
        let mut t = Table::new("x");
        assert!(t.is_empty());
        t.row(["a"]);
        t.note("scaled run");
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("note: scaled run"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("r").header(["a", "b"]);
        t.row(["only-one"]);
        t.row(["x", "y"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn fnum_precision_bands() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(123.45), "123.5");
        assert_eq!(fnum(1.234), "1.23");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }

    #[test]
    fn fmtput_scales_to_millions() {
        assert_eq!(fmtput(12_300_000.0), "12.3M/s");
    }
}
