//! Aligned text tables and deterministic JSON for the bench binaries and
//! the trace export path.
//!
//! Every figure/table binary prints its series in the same shape the paper
//! reports them (rows = configurations, columns = techniques), via this
//! minimal formatter — no external table crate. [`JsonBuf`] is the
//! equally minimal structured-output side: a comma-tracking JSON writer
//! used by `amac_trace`'s Chrome `trace_event` exporter and
//! `amac_runtime::RunReport::to_json`, whose byte output is a pure
//! function of the emitted values (no maps, no float shortest-repr
//! ambiguity beyond `Display`), so exported traces can be compared
//! byte-for-byte across runs.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Table { title: title.into(), ..Default::default() }
    }

    /// Set the header row.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn row<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Append a footnote (rendered after the table body).
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(line, "{cell:<w$}");
                } else {
                    let _ = write!(line, "  {cell:>w$}");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a f64 with engineering-friendly precision (3 significant-ish
/// decimals below 10, 1 decimal below 1000, integers above).
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a throughput in millions/second, as the paper's Figures 7–8.
pub fn fmtput(tuples_per_sec: f64) -> String {
    format!("{:.1}M/s", tuples_per_sec / 1e6)
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal deterministic JSON writer: explicit begin/end calls with
/// automatic comma placement. The caller controls key order, so the byte
/// output is reproducible — the property the trace determinism checks
/// rely on.
#[derive(Debug, Clone, Default)]
pub struct JsonBuf {
    out: String,
    /// One entry per open container: whether it already has an element.
    stack: Vec<bool>,
}

impl JsonBuf {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Write `"key":` inside an object (no separator tracking of its own:
    /// the following value call must not `sep` again, so pair this only
    /// with the `*_raw` internals via the typed field methods below).
    fn key(&mut self, key: &str) {
        self.sep();
        let _ = write!(self.out, "\"{}\":", json_escape(key));
    }

    /// Open the root or a nested array element object.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Open `"key": {`.
    pub fn begin_obj_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open `"key": [`.
    pub fn begin_arr_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// `"key": "value"`.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "\"{}\"", json_escape(value));
        self
    }

    /// `"key": value` for unsigned integers.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// `"key": value` with fixed 4-decimal formatting (the same shape the
    /// bench trajectory blobs and `bin/regress` use).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value:.4}");
        self
    }

    /// The accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").header(["cfg", "Baseline", "AMAC"]);
        t.row(["[0,0]", "100", "25"]);
        t.row(["[1,1]", "101.5", "33"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        // title + header + separator + 2 data rows.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric columns: both rows end at the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn empty_and_notes() {
        let mut t = Table::new("x");
        assert!(t.is_empty());
        t.row(["a"]);
        t.note("scaled run");
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("note: scaled run"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("r").header(["a", "b"]);
        t.row(["only-one"]);
        t.row(["x", "y"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn fnum_precision_bands() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(123.45), "123.5");
        assert_eq!(fnum(1.234), "1.23");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }

    #[test]
    fn fmtput_scales_to_millions() {
        assert_eq!(fmtput(12_300_000.0), "12.3M/s");
    }

    #[test]
    fn json_buf_places_commas_and_escapes() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.str_field("name", "a\"b\\c\nd");
        j.u64_field("n", 42);
        j.begin_arr_key("rows");
        j.begin_obj().u64_field("x", 1).end_obj();
        j.begin_obj().f64_field("y", 0.25).end_obj();
        j.end_arr();
        j.begin_obj_key("inner").end_obj();
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"a\"b\\c\nd","n":42,"rows":[{"x":1},{"y":0.2500}],"inner":{}}"#
        );
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("plain"), "plain");
    }
}
