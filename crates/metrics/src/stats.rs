//! Small statistics over repeated trials.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for an empty slice.
    pub fn of(sample: &[f64]) -> Summary {
        if sample.is_empty() {
            return Summary { n: 0, mean: 0.0, stddev: 0.0, min: 0.0, max: 0.0, median: 0.0 };
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]) };
        Summary { n, mean, stddev: var.sqrt(), min: sorted[0], max: sorted[n - 1], median }
    }

    /// Relative standard deviation (stddev / mean), 0 when mean is 0.
    pub fn rsd(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Geometric mean of a positive sample (the paper reports geomean
/// speedups for the BST experiment). Returns 0 for an empty slice.
pub fn geomean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = sample
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / sample.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample stddev of 1..4 = sqrt(5/3).
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_odd_median_and_single() {
        assert_eq!(Summary::of(&[3.0, 1.0, 2.0]).median, 2.0);
        let one = Summary::of(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.stddev, 0.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.rsd(), 0.0);
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn rsd_is_scale_free() {
        let a = Summary::of(&[1.0, 2.0, 3.0]);
        let b = Summary::of(&[10.0, 20.0, 30.0]);
        assert!((a.rsd() - b.rsd()).abs() < 1e-12);
    }
}
