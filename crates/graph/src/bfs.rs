//! Level-synchronous BFS with interleaved frontier expansion.
//!
//! Each BFS level performs two batches of independent lookups, both
//! executed by any of the four techniques:
//!
//! 1. **expand** — per frontier vertex: chase `offsets[v]` (one dependent
//!    load), then walk the adjacency list one cache line (16 `u32`
//!    neighbours) per code stage, prefetching the next line — chain length
//!    varies with out-degree, the graph analogue of variable hash chains;
//! 2. **visit** — per collected candidate: chase the visited-bitmap word
//!    (a random dependent load), test-and-set, and append newly discovered
//!    vertices to the next frontier.
//!
//! On power-law graphs the out-degree distribution is exactly the kind of
//! irregularity that breaks GP/SPP's static schedules while AMAC keeps
//! `M` memory accesses in flight.

use crate::csr::Csr;
use amac::engine::{run, EngineStats, LookupOp, Step, Technique, TuningParams};
use amac_mem::prefetch::prefetch_read;

/// Edges consumed per expansion code stage: one 64-byte line of `u32`s.
pub const EDGES_PER_STAGE: usize = 16;

/// BFS configuration.
#[derive(Debug, Clone, Default)]
pub struct BfsConfig {
    /// Executor tuning (the paper's `M`).
    pub params: TuningParams,
}

/// BFS result.
#[derive(Debug, Clone, Default)]
pub struct BfsOutput {
    /// Vertices reached (including the source).
    pub visited: u64,
    /// Number of BFS levels (eccentricity of the source + 1).
    pub levels: u32,
    /// Per-vertex depth (`u32::MAX` = unreached).
    pub depth: Vec<u32>,
    /// Merged executor counters over all levels and both phases.
    pub stats: EngineStats,
}

/// Frontier-expansion lookup: vertex → offset pair → adjacency lines.
///
/// Public so parallel drivers (e.g. `amac_ops::parallel::bfs_mt`) can run
/// one instance per worker thread; the collected `candidates` are merged
/// by the caller.
pub struct ExpandOp<'a> {
    /// The graph being traversed (read-only).
    pub graph: &'a Csr,
    /// Neighbour vertices collected by this op's lookups.
    pub candidates: Vec<u32>,
    /// Average out-degree, sizing the GP/SPP stage budget.
    pub avg_degree: usize,
}

/// Per-lookup state for [`ExpandOp`].
#[derive(Default)]
pub struct ExpandState {
    v: u32,
    lo: u64,
    hi: u64,
    have_range: bool,
}

impl LookupOp for ExpandOp<'_> {
    type Input = u32;
    type State = ExpandState;

    fn budgeted_steps(&self) -> usize {
        // Offset load + the common-case number of edge lines.
        2 + self.avg_degree / EDGES_PER_STAGE
    }

    fn start(&mut self, v: u32, st: &mut ExpandState) {
        prefetch_read(self.graph.offset_addr(v));
        st.v = v;
        st.have_range = false;
    }

    fn step(&mut self, st: &mut ExpandState) -> Step {
        if !st.have_range {
            let (lo, hi) = self.graph.edge_range(st.v);
            if lo == hi {
                return Step::Done;
            }
            prefetch_read(self.graph.edge_addr(lo));
            st.lo = lo;
            st.hi = hi;
            st.have_range = true;
            return Step::Continue;
        }
        let take = ((st.hi - st.lo) as usize).min(EDGES_PER_STAGE);
        let base = st.lo as usize;
        // Bulk-copy one line of neighbours into the candidate buffer.
        self.candidates.extend_from_slice(&self.graph.neighbours_raw()[base..base + take]);
        st.lo += take as u64;
        if st.lo == st.hi {
            return Step::Done;
        }
        prefetch_read(self.graph.edge_addr(st.lo));
        Step::Continue
    }
}

/// Visited-bitmap lookup: candidate vertex → bitmap word → next frontier.
struct VisitOp<'a> {
    bits: &'a mut [u64],
    depth: &'a mut [u32],
    level: u32,
    next_frontier: Vec<u32>,
}

#[derive(Default)]
struct VisitState {
    c: u32,
}

impl LookupOp for VisitOp<'_> {
    type Input = u32;
    type State = VisitState;

    fn budgeted_steps(&self) -> usize {
        1
    }

    fn start(&mut self, c: u32, st: &mut VisitState) {
        prefetch_read(&self.bits[(c >> 6) as usize] as *const u64);
        st.c = c;
    }

    fn step(&mut self, st: &mut VisitState) -> Step {
        let word = (st.c >> 6) as usize;
        let mask = 1u64 << (st.c & 63);
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.depth[st.c as usize] = self.level;
            self.next_frontier.push(st.c);
        }
        Step::Done
    }
}

/// Run a single-source BFS from `src` under `technique`.
pub fn bfs(graph: &Csr, src: u32, technique: Technique, cfg: &BfsConfig) -> BfsOutput {
    let n = graph.vertices();
    assert!((src as usize) < n, "source out of range");
    let mut bits = vec![0u64; n.div_ceil(64)];
    let mut depth = vec![u32::MAX; n];
    bits[(src >> 6) as usize] |= 1 << (src & 63);
    depth[src as usize] = 0;

    let mut stats = EngineStats::default();
    let mut frontier = vec![src];
    let mut visited = 1u64;
    let mut level = 0u32;
    let avg_degree = (graph.edges() / n.max(1)).max(1);

    while !frontier.is_empty() {
        level += 1;
        // Phase 1: expand the frontier into a candidate list.
        let mut expand = ExpandOp {
            graph,
            candidates: Vec::with_capacity(frontier.len() * avg_degree),
            avg_degree,
        };
        stats.merge(&run(technique, &mut expand, &frontier, cfg.params));
        // Phase 2: visited-filter the candidates into the next frontier.
        let mut visit =
            VisitOp { bits: &mut bits, depth: &mut depth, level, next_frontier: Vec::new() };
        stats.merge(&run(technique, &mut visit, &expand.candidates, cfg.params));
        visited += visit.next_frontier.len() as u64;
        frontier = visit.next_frontier;
    }

    BfsOutput { visited, levels: level, depth, stats }
}

/// Reference BFS (queue-based) for validation.
pub fn bfs_reference(graph: &Csr, src: u32) -> Vec<u32> {
    let n = graph.vertices();
    let mut depth = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbours(v) {
            if depth[w as usize] == u32::MAX {
                depth[w as usize] = depth[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_matches_reference_on_uniform_graph() {
        let g = Csr::uniform_random(5_000, 4, 9);
        let want = bfs_reference(&g, 0);
        for t in Technique::ALL {
            let out = bfs(&g, 0, t, &BfsConfig::default());
            assert_eq!(out.depth, want, "{t}: depths diverge");
            assert_eq!(out.visited, want.iter().filter(|&&d| d != u32::MAX).count() as u64, "{t}");
        }
    }

    #[test]
    fn bfs_matches_reference_on_power_law_graph() {
        let g = Csr::power_law(5_000, 8, 1.0, 11);
        let want = bfs_reference(&g, 42);
        for t in Technique::ALL {
            let out = bfs(&g, 42, t, &BfsConfig::default());
            assert_eq!(out.depth, want, "{t}");
        }
    }

    #[test]
    fn bfs_on_disconnected_graph() {
        // Two components: 0-1-2 and 3-4.
        let g = Csr::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let out = bfs(&g, 0, Technique::Amac, &BfsConfig::default());
        assert_eq!(out.visited, 3);
        assert_eq!(out.depth[3], u32::MAX);
        assert_eq!(out.depth[4], u32::MAX);
        assert_eq!(out.levels, 3); // levels incl. final empty expansion
    }

    #[test]
    fn bfs_single_vertex() {
        let g = Csr::from_edges(1, vec![]);
        let out = bfs(&g, 0, Technique::Gp, &BfsConfig::default());
        assert_eq!(out.visited, 1);
        assert_eq!(out.depth, vec![0]);
    }

    #[test]
    fn amac_bfs_never_bails() {
        let g = Csr::power_law(10_000, 16, 1.2, 13);
        let out = bfs(&g, 0, Technique::Amac, &BfsConfig::default());
        assert_eq!(out.stats.bailouts, 0);
        assert_eq!(out.stats.noops, 0);
    }

    #[test]
    fn gp_bfs_bails_on_hub_vertices() {
        // θ=1.2 power law: hub adjacency lists far exceed the avg budget.
        let g = Csr::power_law(10_000, 16, 1.2, 13);
        let out = bfs(&g, 0, Technique::Gp, &BfsConfig::default());
        assert!(out.stats.bailouts > 0, "hubs must exceed GP's static budget");
    }
}
