//! Compressed-sparse-row graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in CSR form: `offsets[v]..offsets[v+1]` indexes into
/// `edges`, which stores neighbour vertex ids.
pub struct Csr {
    offsets: Vec<u64>,
    edges: Vec<u32>,
}

impl Csr {
    /// Build from an edge list (duplicates kept; self-loops allowed).
    pub fn from_edges(n_vertices: usize, mut edge_list: Vec<(u32, u32)>) -> Csr {
        assert!(n_vertices < u32::MAX as usize, "vertex ids are u32");
        edge_list.sort_unstable();
        let mut offsets = Vec::with_capacity(n_vertices + 1);
        let mut edges = Vec::with_capacity(edge_list.len());
        offsets.push(0);
        let mut cur = 0u32;
        for (src, dst) in edge_list {
            assert!((src as usize) < n_vertices && (dst as usize) < n_vertices);
            while cur < src {
                offsets.push(edges.len() as u64);
                cur += 1;
            }
            edges.push(dst);
        }
        while offsets.len() <= n_vertices {
            offsets.push(edges.len() as u64);
        }
        Csr { offsets, edges }
    }

    /// Erdős–Rényi-style random graph: every vertex gets exactly `degree`
    /// uniform out-neighbours.
    pub fn uniform_random(n_vertices: usize, degree: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edge_list = Vec::with_capacity(n_vertices * degree);
        for v in 0..n_vertices as u32 {
            for _ in 0..degree {
                edge_list.push((v, rng.gen_range(0..n_vertices as u32)));
            }
        }
        Csr::from_edges(n_vertices, edge_list)
    }

    /// Power-law graph: out-degrees follow Zipf(θ) (scale-free-ish), the
    /// graph analogue of the paper's skewed relations — some vertices have
    /// enormous adjacency lists, most have tiny ones.
    pub fn power_law(n_vertices: usize, avg_degree: usize, theta: f64, seed: u64) -> Csr {
        use rand::distributions::Distribution;
        let mut rng = StdRng::seed_from_u64(seed);
        // Degree of rank-r vertex ∝ 1/r^θ, normalized to the target edge
        // count; vertices are assigned ranks via a shuffled identity.
        let target_edges = n_vertices * avg_degree;
        let norm: f64 = (1..=n_vertices as u64).map(|r| (r as f64).powf(-theta)).sum();
        let mut edge_list = Vec::with_capacity(target_edges);
        let uni = rand::distributions::Uniform::new(0, n_vertices as u32);
        for (rank, v) in (0..n_vertices as u32).enumerate() {
            let share = ((rank + 1) as f64).powf(-theta) / norm;
            let degree = (share * target_edges as f64).round() as usize;
            for _ in 0..degree {
                edge_list.push((v, uni.sample(&mut rng)));
            }
        }
        Csr::from_edges(n_vertices, edge_list)
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline(always)]
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of `v`.
    #[inline(always)]
    pub fn neighbours(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The whole edge array (staged traversals index it by the offsets
    /// from [`Csr::edge_range`]).
    #[inline(always)]
    pub fn neighbours_raw(&self) -> &[u32] {
        &self.edges
    }

    /// Address of `v`'s offset entry (prefetch target for stage 0).
    #[inline(always)]
    pub fn offset_addr(&self, v: u32) -> *const u64 {
        // SAFETY: v < vertices() is asserted by callers; +1 stays in range.
        unsafe { self.offsets.as_ptr().add(v as usize) }
    }

    /// Address of the first edge of `v` (prefetch target for stage 1).
    #[inline(always)]
    pub fn edge_addr(&self, first_edge: u64) -> *const u32 {
        debug_assert!(first_edge as usize <= self.edges.len());
        // SAFETY: bounded by edges.len(); prefetch of the one-past-end
        // address is harmless.
        unsafe { self.edges.as_ptr().add(first_edge as usize) }
    }

    /// Raw offset pair for `v` (used by the staged BFS op).
    #[inline(always)]
    pub fn edge_range(&self, v: u32) -> (u64, u64) {
        (self.offsets[v as usize], self.offsets[v as usize + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_correct_adjacency() {
        let g = Csr::from_edges(4, vec![(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[] as &[u32]);
        assert_eq!(g.neighbours(2), &[3]);
        assert_eq!(g.neighbours(3), &[0]);
    }

    #[test]
    fn isolated_tail_vertices() {
        let g = Csr::from_edges(5, vec![(0, 1)]);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbours(4), &[] as &[u32]);
    }

    #[test]
    fn uniform_random_has_exact_degrees() {
        let g = Csr::uniform_random(100, 8, 3);
        assert_eq!(g.edges(), 800);
        for v in 0..100u32 {
            assert_eq!(g.degree(v), 8);
            assert!(g.neighbours(v).iter().all(|&n| (n as usize) < 100));
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let g = Csr::power_law(1000, 8, 1.0, 5);
        let max_deg = (0..1000u32).map(|v| g.degree(v)).max().unwrap();
        let med = {
            let mut d: Vec<usize> = (0..1000u32).map(|v| g.degree(v)).collect();
            d.sort_unstable();
            d[500]
        };
        assert!(max_deg > 20 * med.max(1), "max degree {max_deg} vs median {med} not skewed");
    }

    #[test]
    fn edge_range_matches_neighbours() {
        let g = Csr::uniform_random(50, 3, 7);
        for v in 0..50u32 {
            let (lo, hi) = g.edge_range(v);
            assert_eq!((hi - lo) as usize, g.degree(v));
        }
    }
}
