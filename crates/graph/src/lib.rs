//! Graph workloads under AMAC — the paper's stated future work (§8:
//! "Our future work will examine the efficacy of AMAC on graph
//! workloads").
//!
//! Provides:
//!
//! * [`csr::Csr`] — a compact compressed-sparse-row graph with 64-byte
//!   aligned adjacency storage, plus uniform and power-law (Zipf-degree)
//!   random graph generators;
//! * [`mod@bfs`] — breadth-first search whose *frontier expansion* is a batch
//!   of independent vertex lookups: each lookup chases `vertex → offset →
//!   neighbours → visited-bitmap`, the same dependent-load shape as a
//!   hash-table probe, executed by any of the four techniques.
//!
//! BFS is the canonical demonstration that AMAC generalizes beyond
//! relational operators: frontier sizes vary wildly (the irregularity GP
//! and SPP cannot schedule statically) while every expansion within a
//! frontier is independent (the inter-lookup parallelism AMAC exploits).

pub mod bfs;
pub mod csr;

pub use bfs::{bfs, BfsConfig, BfsOutput, ExpandOp};
pub use csr::Csr;
