//! Property tests: the chained hash table against a `HashMap` multiset
//! model and the aggregate table against a folded model, for arbitrary
//! key/payload sequences and adversarial bucket counts.

use amac_hashtable::agg::AggValues;
use amac_hashtable::{AggTable, HashTable};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_contains_exactly_the_inserted_multiset(
        pairs in prop::collection::vec((0u64..500, 0u64..1_000_000), 0..400),
        buckets in 1usize..64,
    ) {
        let ht = HashTable::with_buckets(buckets);
        {
            let mut h = ht.build_handle();
            for &(k, p) in &pairs {
                h.insert(k, p);
            }
        }
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(k, p) in &pairs {
            model.entry(k).or_default().push(p);
        }
        prop_assert_eq!(ht.len(), pairs.len());
        prop_assert_eq!(ht.tuple_count() as usize, pairs.len());
        for (k, want) in &model {
            let mut got = ht.lookup_all(*k);
            let mut want = want.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "key {}", k);
        }
        // Absent keys are really absent.
        for k in 500..510 {
            prop_assert!(ht.lookup_first(k).is_none());
            prop_assert!(ht.lookup_all(k).is_empty());
        }
    }

    #[test]
    fn stats_are_consistent_with_len(
        keys in prop::collection::vec(0u64..100, 0..300),
        buckets in 1usize..32,
    ) {
        let ht = HashTable::with_buckets(buckets);
        {
            let mut h = ht.build_handle();
            for &k in &keys {
                h.insert(k, k);
            }
        }
        let s = ht.stats();
        prop_assert_eq!(s.buckets, ht.bucket_count());
        prop_assert!(s.empty_buckets <= s.buckets);
        // Each node holds 1..=TUPLES_PER_NODE tuples: node count brackets
        // tuple count.
        prop_assert!(s.total_nodes * amac_hashtable::TUPLES_PER_NODE >= keys.len());
        prop_assert!(s.total_nodes <= keys.len().max(1));
        prop_assert!(s.max_chain <= s.total_nodes);
    }

    #[test]
    fn index_chains_match_pointer_chains(
        pairs in prop::collection::vec((0u64..300, 0u64..1_000_000), 1..500),
        buckets in 1usize..64,
    ) {
        // The same insert sequence through the u32-indexed arena chains
        // and through the legacy pointer chains yields bit-identical
        // contents (and the tag filter never hides a stored tuple).
        let new = HashTable::with_buckets(buckets);
        let old = amac_hashtable::LegacyHashTable::with_buckets(buckets);
        {
            let mut hn = new.build_handle();
            let mut ho = old.build_handle();
            for &(k, p) in &pairs {
                hn.insert(k, p);
                ho.insert(k, p);
            }
        }
        prop_assert_eq!(new.len(), old.len());
        for k in 0..300u64 {
            let mut a = new.lookup_all(k);
            let mut b = old.lookup_all(k);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "key {}", k);
        }
    }

    #[test]
    fn agg_table_matches_folded_model(
        pairs in prop::collection::vec((0u64..64, 0u64..10_000), 1..400),
        buckets in 1usize..16,
    ) {
        let t = AggTable::with_buckets(buckets);
        {
            let mut h = t.handle();
            for &(k, p) in &pairs {
                h.update(k, p);
            }
        }
        let mut model: HashMap<u64, AggValues> = HashMap::new();
        for &(k, p) in &pairs {
            model
                .entry(k)
                .and_modify(|a| a.update(p))
                .or_insert_with(|| AggValues::first(p));
        }
        prop_assert_eq!(t.group_count(), model.len());
        for (k, v) in &model {
            let got = t.get(*k);
            prop_assert_eq!(got.as_ref(), Some(v), "group {}", k);
        }
    }
}
