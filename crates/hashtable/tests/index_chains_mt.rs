//! Indexed-arena chain equivalence under concurrent builds: the
//! `u32`-linked table built by 1/2/4 threads must hold contents
//! bit-identical to the legacy pointer-linked table (and to itself across
//! thread counts), even though the shared arena hands out indices in a
//! nondeterministic interleaving.

use amac_hashtable::{HashTable, LegacyHashTable};
use amac_workload::Relation;

/// Canonical content snapshot: sorted (key, payload) multiset.
fn snapshot(lookup_all: impl Fn(u64) -> Vec<u64>, keys: &[u64]) -> Vec<(u64, u64)> {
    let mut uniq = keys.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let mut snap = Vec::new();
    for k in uniq {
        let mut pls = lookup_all(k);
        pls.sort_unstable();
        for p in pls {
            snap.push((k, p));
        }
    }
    snap
}

#[test]
fn concurrent_index_chains_match_pointer_chains() {
    let rel = Relation::zipf(24_000, 3_000, 0.9, 0xC0FFEE);
    let keys: Vec<u64> = rel.tuples.iter().map(|t| t.key).collect();

    let reference = {
        let old = LegacyHashTable::build_serial(&rel);
        snapshot(|k| old.lookup_all(k), &keys)
    };

    for threads in [1usize, 2, 4] {
        let ht = HashTable::for_tuples(rel.len());
        std::thread::scope(|scope| {
            for chunk in rel.tuples.chunks(rel.len().div_ceil(threads)) {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for t in chunk {
                        h.insert(t.key, t.payload);
                    }
                });
            }
        });
        assert_eq!(ht.len(), rel.len(), "{threads}t: all tuples inserted");
        let snap = snapshot(|k| ht.lookup_all(k), &keys);
        assert_eq!(snap, reference, "{threads}t: contents diverge from pointer-built chains");
    }
}

#[test]
fn concurrent_chain_indices_roundtrip() {
    // Every chain link written by any thread resolves to a node whose
    // reverse lookup returns the same index (idx -> ptr -> idx), across
    // the nondeterministic slab growth of a 4-thread build.
    let rel = Relation::zipf(20_000, 500, 1.0, 0x1D);
    let ht = HashTable::with_buckets(128);
    std::thread::scope(|scope| {
        for chunk in rel.tuples.chunks(rel.len() / 4) {
            let ht = &ht;
            scope.spawn(move || {
                let mut h = ht.build_handle();
                for t in chunk {
                    h.insert(t.key, t.payload);
                }
            });
        }
    });
    let mut reachable = 0usize;
    for b in 0..ht.bucket_count() {
        // Walk via the probe path: resolve every next index to a pointer
        // and require the reverse lookup to return the same index.
        let mut idx = unsafe { (*ht.header_addr(b)).data() }.next;
        while idx != amac_mem::NULL_INDEX {
            let ptr = ht.node_ptr(idx);
            assert_eq!(ht.nodes().index_of(ptr), Some(idx), "idx -> ptr -> idx roundtrip");
            reachable += 1;
            idx = unsafe { (*ptr).data() }.next;
        }
    }
    assert_eq!(reachable, ht.nodes().len(), "every allocated node is chain-reachable");
}
