//! Open-addressing (linear probing) hash table — the flat-layout
//! counterpart to the chained [`HashTable`](crate::HashTable).
//!
//! §2.1.1 observes that "state-of-the-art hash tables offer a tradeoff
//! between performance (i.e., number of chained memory accesses) and space
//! efficiency" and that no single layout can guarantee a constant number
//! of memory accesses per probe. This module provides the other end of
//! that tradeoff for the layout ablation (`bench/bin/layout`): tuples live
//! in one flat, cache-line-aligned slot array; a probe walks *consecutive*
//! cache lines from the home slot until it hits the key or an empty slot.
//!
//! The irregularity knob is the **fill factor**: at low fill nearly every
//! probe resolves in its home cache line (a regular, 1-access pattern); as
//! fill grows, displacement — and with it the probe-length *variance* that
//! breaks static prefetch schedules — rises sharply.
//!
//! The table is built single-threaded and probed read-only (phase
//! separation; the concurrent-build story lives in the chained table).

use amac_mem::align::{alloc_aligned_slice, AlignedBox};
use amac_mem::hash::mix64;
use amac_workload::{Relation, Tuple};

/// Slot key value marking an empty slot. Inserted keys must differ.
pub const EMPTY_KEY: u64 = u64::MAX;

/// Tuples per cache line in the slot array (64 B line / 16 B tuple).
pub const SLOTS_PER_LINE: usize = 4;

/// A 64-byte-aligned slot group; the unit a probe step consumes and the
/// prefetcher targets.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
pub struct SlotLine {
    /// Inline tuples; `key == EMPTY_KEY` marks a free slot.
    pub slots: [Tuple; SLOTS_PER_LINE],
}

impl Default for SlotLine {
    fn default() -> Self {
        SlotLine { slots: [Tuple::new(EMPTY_KEY, 0); SLOTS_PER_LINE] }
    }
}

/// Linear-probing hash table over cache-line slot groups.
///
/// The slot count is any multiple of [`SLOTS_PER_LINE`] (not a power of
/// two): keys map to home slots with the fastrange reduction
/// `(mix64(key) · slots) >> 64`, so a requested fill factor is honoured
/// exactly instead of being destroyed by power-of-two rounding — the fill
/// knob *is* the layout ablation's independent variable.
pub struct LinearTable {
    lines: AlignedBox<SlotLine>,
    /// Total slots (multiple of `SLOTS_PER_LINE`).
    slots: usize,
    len: usize,
    /// Sum of probe displacements (slots walked past home) over inserts.
    total_displacement: u64,
    /// Largest insert displacement seen.
    max_displacement: u64,
}

impl LinearTable {
    /// Create an empty table with at least `n_slots` slots (rounded up to
    /// a whole cache line, minimum one line).
    pub fn with_slots(n_slots: usize) -> Self {
        let lines = n_slots.max(SLOTS_PER_LINE).div_ceil(SLOTS_PER_LINE);
        LinearTable {
            lines: alloc_aligned_slice(lines),
            slots: lines * SLOTS_PER_LINE,
            len: 0,
            total_displacement: 0,
            max_displacement: 0,
        }
    }

    /// Create a table sized so that `n_tuples` inserts reach at most
    /// `fill` occupancy (0 < `fill` < 1).
    pub fn for_tuples(n_tuples: usize, fill: f64) -> Self {
        assert!(fill > 0.0 && fill < 1.0, "fill factor must be in (0, 1), got {fill}");
        Self::with_slots(((n_tuples as f64 / fill).ceil() as usize).max(n_tuples + 1))
    }

    /// Build a table from `rel` at the given fill factor on the calling
    /// thread.
    pub fn build_serial(rel: &Relation, fill: f64) -> Self {
        let mut t = Self::for_tuples(rel.len().max(1), fill);
        for tu in &rel.tuples {
            t.insert(tu.key, tu.payload);
        }
        t
    }

    /// Total slots.
    #[inline(always)]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Occupied slots / total slots.
    #[inline]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.slot_count() as f64
    }

    /// Stored tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tuples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home slot index for `key` (fastrange over the splitmix64
    /// finalizer).
    #[inline(always)]
    pub fn home_slot(&self, key: u64) -> usize {
        ((mix64(key) as u128 * self.slots as u128) >> 64) as usize
    }

    /// `slot + 1` with wraparound.
    #[inline(always)]
    pub fn next_slot(&self, slot: usize) -> usize {
        let n = slot + 1;
        if n == self.slots {
            0
        } else {
            n
        }
    }

    /// Address of the cache line containing slot `slot` — computable
    /// without touching table memory, so stage 0 can prefetch it.
    ///
    /// # Panics
    /// Debug-asserts `slot < slot_count()` (callers pass wrapped indices).
    #[inline(always)]
    pub fn line_addr(&self, slot: usize) -> *const SlotLine {
        debug_assert!(slot < self.slots);
        // SAFETY: slot < slots by the caller contract, so the line index
        // is in range.
        unsafe { self.lines.as_ptr().add(slot / SLOTS_PER_LINE) }
    }

    /// Tuple stored in `slot` (must already be wrapped).
    #[inline(always)]
    pub fn slot(&self, slot: usize) -> Tuple {
        debug_assert!(slot < self.slots);
        self.lines[slot / SLOTS_PER_LINE].slots[slot % SLOTS_PER_LINE]
    }

    /// Insert `(key, payload)` at the first free slot from `key`'s home
    /// (duplicate keys allowed; multimap semantics like the chained table).
    ///
    /// # Panics
    /// If `key == EMPTY_KEY` (reserved) or the table is full.
    pub fn insert(&mut self, key: u64, payload: u64) {
        assert_ne!(key, EMPTY_KEY, "EMPTY_KEY is reserved as the free-slot marker");
        assert!(self.len < self.slot_count(), "linear table is full");
        let mut s = self.home_slot(key);
        let mut d = 0u64;
        loop {
            let line = &mut self.lines[s / SLOTS_PER_LINE];
            if line.slots[s % SLOTS_PER_LINE].key == EMPTY_KEY {
                line.slots[s % SLOTS_PER_LINE] = Tuple::new(key, payload);
                self.len += 1;
                self.total_displacement += d;
                self.max_displacement = self.max_displacement.max(d);
                return;
            }
            s = self.next_slot(s);
            d += 1;
        }
    }

    /// First payload stored for `key`, if any (reference probe).
    pub fn lookup_first(&self, key: u64) -> Option<u64> {
        let mut s = self.home_slot(key);
        for _ in 0..self.slot_count() {
            let t = self.slot(s);
            if t.key == key {
                return Some(t.payload);
            }
            if t.key == EMPTY_KEY {
                return None;
            }
            s = self.next_slot(s);
        }
        None
    }

    /// Every payload stored for `key` within its probe window (reference).
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut s = self.home_slot(key);
        for _ in 0..self.slot_count() {
            let t = self.slot(s);
            if t.key == EMPTY_KEY {
                break;
            }
            if t.key == key {
                out.push(t.payload);
            }
            s = self.next_slot(s);
        }
        out
    }

    /// Probe-distance statistics accumulated during the build.
    pub fn stats(&self) -> LinearStats {
        LinearStats {
            slots: self.slot_count(),
            len: self.len,
            load_factor: self.load_factor(),
            avg_displacement: if self.len == 0 {
                0.0
            } else {
                self.total_displacement as f64 / self.len as f64
            },
            max_displacement: self.max_displacement,
        }
    }
}

// SAFETY: mutation only via &mut self during the build phase; probes are
// read-only over the owned slot array.
unsafe impl Send for LinearTable {}
unsafe impl Sync for LinearTable {}

/// Probe-distance statistics for a linear-probing table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearStats {
    /// Total slots.
    pub slots: usize,
    /// Occupied slots.
    pub len: usize,
    /// `len / slots`.
    pub load_factor: f64,
    /// Mean insert displacement in slots.
    pub avg_displacement: f64,
    /// Maximum insert displacement in slots.
    pub max_displacement: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_line_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<SlotLine>(), 64);
        assert_eq!(core::mem::align_of::<SlotLine>(), 64);
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = LinearTable::with_slots(64);
        for k in 0..40u64 {
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), 40);
        for k in 0..40u64 {
            assert_eq!(t.lookup_first(k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.lookup_first(100), None);
    }

    #[test]
    fn duplicates_are_multimap() {
        let mut t = LinearTable::with_slots(32);
        for p in 0..5u64 {
            t.insert(9, p);
        }
        let mut all = t.lookup_all(9);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_probing_works() {
        // Force every key to the last slots so probes wrap to slot 0.
        let mut t = LinearTable::with_slots(SLOTS_PER_LINE * 2); // 8 slots
                                                                 // Find keys whose home is the final slot.
        let mut keys = Vec::new();
        let mut k = 0u64;
        while keys.len() < 4 {
            if t.home_slot(k) == 7 {
                keys.push(k);
            }
            k += 1;
        }
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i as u64);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.lookup_first(*k), Some(i as u64));
        }
    }

    #[test]
    fn fill_factor_sizes_table() {
        let t = LinearTable::for_tuples(1000, 0.5);
        assert!(t.slot_count() >= 2000);
        let t = LinearTable::for_tuples(1000, 0.9);
        assert!(t.slot_count() >= 1112);
        assert!(t.slot_count() <= 2048);
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn fill_factor_one_rejected() {
        let _ = LinearTable::for_tuples(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn empty_key_rejected() {
        let mut t = LinearTable::with_slots(8);
        t.insert(EMPTY_KEY, 0);
    }

    #[test]
    fn displacement_grows_with_fill() {
        let rel = Relation::dense_unique(4096, 17);
        let sparse = LinearTable::build_serial(&rel, 0.25);
        let dense = LinearTable::build_serial(&rel, 0.9);
        assert!(
            dense.stats().avg_displacement > sparse.stats().avg_displacement * 2.0,
            "displacement must rise with load: {:?} vs {:?}",
            dense.stats(),
            sparse.stats()
        );
        // Every key still findable at both fills.
        for tu in rel.tuples.iter().step_by(61) {
            assert_eq!(sparse.lookup_first(tu.key), Some(tu.payload));
            assert_eq!(dense.lookup_first(tu.key), Some(tu.payload));
        }
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let rel = Relation::zipf(5000, 800, 0.8, 23);
        let t = LinearTable::build_serial(&rel, 0.7);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for tu in &rel.tuples {
            model.entry(tu.key).or_default().push(tu.payload);
        }
        for (k, v) in &model {
            let mut got = t.lookup_all(*k);
            let mut want = v.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
        }
    }

    #[test]
    fn empty_table_queries() {
        let t = LinearTable::with_slots(16);
        assert!(t.is_empty());
        assert_eq!(t.lookup_first(1), None);
        assert!(t.lookup_all(1).is_empty());
        assert_eq!(t.stats().avg_displacement, 0.0);
    }
}
