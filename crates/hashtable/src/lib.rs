//! Hash tables in the paper's (Balkesen et al.) layout, plus the
//! open-addressing counterpart for the layout ablation.
//!
//! Four tables:
//!
//! * [`HashTable`] — the chained hash-join table (§4) in the **tag-probed
//!   fat layout**: each 64-byte, cache-line-aligned node holds a 1-byte
//!   latch, **three** 16-byte tuples, a packed word of per-slot
//!   fingerprints and a `u32` arena index to the next chain node (see
//!   [`bucket`] for the layout math and the SWAR tag filter); overflow
//!   nodes reuse the bucket layout ("the first hash table node is
//!   clustered with the bucket header", Fig. 1).
//! * [`agg::AggTable`] — the group-by table: one group per node, carrying
//!   the paper's six aggregates (count, sum, min, max, sum of squares, and
//!   avg derived at read time), chain-linked by `u32` index.
//! * [`linear::LinearTable`] — open-addressing linear probing over flat
//!   cache-line slot groups: the other end of §2.1.1's layout/space
//!   tradeoff, with the fill factor as the irregularity knob.
//! * [`legacy::LegacyHashTable`] / [`legacy::LegacyAggTable`] — the seed's
//!   pointer-linked 2-tuple layout, kept for the layout A/B
//!   (`bench/bin/layout`).
//!
//! # Concurrency model
//!
//! Mutation goes through per-bucket latches with `UnsafeCell` payloads:
//! the *holder of a bucket's latch* may mutate that bucket's chain; readers
//! may traverse only during read-only phases (probe after build), which the
//! operator drivers enforce by taking `&mut`/ownership at phase boundaries.
//! Overflow nodes come from one table-owned
//! [`IndexedArena`](amac_mem::arena::IndexedArena) with lock-free
//! allocation, so the `u32` chain indices all build handles write resolve
//! through a single address space for the table's lifetime.

pub mod agg;
pub mod bucket;
pub mod late;
pub mod legacy;
pub mod linear;
pub mod table;

pub use agg::{AggBucket, AggTable};
pub use bucket::{probe_word, tags_may_match, Bucket, BucketData, TUPLES_PER_NODE};
pub use late::LateAggTable;
pub use legacy::{LegacyAggTable, LegacyBucket, LegacyHashTable, LEGACY_TUPLES_PER_NODE};
pub use linear::{LinearTable, SlotLine, EMPTY_KEY, SLOTS_PER_LINE};
pub use table::{BuildHandle, HashTable, TableSnapshot, TableStats};
