//! Hash tables in the paper's (Balkesen et al.) layout, plus the
//! open-addressing counterpart for the layout ablation.
//!
//! Three tables:
//!
//! * [`HashTable`] — the chained hash-join table (§4): each 64-byte,
//!   cache-line-aligned bucket holds a 1-byte latch, two 16-byte tuples and
//!   an 8-byte pointer to the next chain node; overflow nodes reuse the
//!   bucket layout ("the first hash table node is clustered with the bucket
//!   header", Fig. 1).
//! * [`agg::AggTable`] — the group-by table: one group per node, carrying
//!   the paper's six aggregates (count, sum, min, max, sum of squares, and
//!   avg derived at read time).
//! * [`linear::LinearTable`] — open-addressing linear probing over flat
//!   cache-line slot groups: the other end of §2.1.1's layout/space
//!   tradeoff, with the fill factor as the irregularity knob.
//!
//! # Concurrency model
//!
//! Mutation goes through per-bucket latches with `UnsafeCell` payloads:
//! the *holder of a bucket's latch* may mutate that bucket's chain; readers
//! may traverse only during read-only phases (probe after build), which the
//! operator drivers enforce by taking `&mut`/ownership at phase boundaries.
//! Overflow nodes come from caller-owned arenas that are donated back to
//! the table (see [`BuildHandle`]), keeping every chain pointer valid for
//! the table's lifetime.

pub mod agg;
pub mod bucket;
pub mod late;
pub mod linear;
pub mod table;

pub use agg::{AggBucket, AggTable};
pub use bucket::{Bucket, BucketData, TUPLES_PER_NODE};
pub use late::LateAggTable;
pub use linear::{LinearTable, SlotLine, EMPTY_KEY, SLOTS_PER_LINE};
pub use table::{BuildHandle, HashTable, TableStats};
