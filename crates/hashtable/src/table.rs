//! The hash-join table.

use crate::bucket::{Bucket, BucketData, TUPLES_PER_NODE};
use amac_mem::arena::IndexedArena;
use amac_mem::hash::{bucket_of, next_pow2, tag_of};
use amac_mem::NULL_INDEX;
use amac_workload::{Relation, Tuple};
use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The chained hash table used by the hash-join workloads.
///
/// Bucket count is a power of two; keys are spread with the splitmix64
/// finalizer and masked (see `amac_mem::hash`). Inserts go to the head of
/// the chain in O(1) — bucket inline slots first, then the newest overflow
/// node, then a freshly allocated node spliced right behind the header —
/// matching Balkesen's NPO build and the paper's observation that build
/// cost is insensitive to skew (§5.1).
///
/// Chain nodes live in one table-owned [`IndexedArena`] and are linked by
/// `u32` index (see [`crate::bucket`] for the layout math); probes resolve
/// an index to its stable address with [`node_ptr`](HashTable::node_ptr)
/// before prefetching the next hop.
pub struct HashTable {
    buckets: amac_mem::align::AlignedBox<Bucket>,
    mask: u64,
    /// Overflow chain nodes, shared by every build handle; `u32` chain
    /// indices resolve into this arena for the table's whole lifetime.
    nodes: IndexedArena<Bucket>,
    /// Tuples inserted so far (merged from build handles on drop).
    tuples: AtomicU64,
    /// The frozen boundary: arena nodes with index `< frozen` (plus every
    /// header's inline slots) were written by the latched build phase and
    /// are structurally immutable during a latch-free mutation epoch;
    /// nodes `>= frozen` are *fresh* — CAS-prepended at chain heads by
    /// the epoch itself. [`u32::MAX`] until [`freeze`](HashTable::freeze)
    /// runs.
    frozen: AtomicU32,
}

impl HashTable {
    /// Create an empty table with at least `n_buckets` buckets (rounded up
    /// to a power of two).
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        HashTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            nodes: IndexedArena::new(),
            tuples: AtomicU64::new(0),
            frozen: AtomicU32::new(u32::MAX),
        }
    }

    /// Create an empty table sized for `n_tuples` build tuples at the
    /// paper's default load: one inline node per bucket on average
    /// (`buckets = n / TUPLES_PER_NODE`).
    pub fn for_tuples(n_tuples: usize) -> Self {
        Self::with_buckets((n_tuples / TUPLES_PER_NODE).max(1))
    }

    /// Build a table from `rel` on the calling thread (the reference
    /// no-prefetch build).
    pub fn build_serial(rel: &Relation) -> Self {
        let table = Self::for_tuples(rel.len());
        {
            let mut h = table.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        table
    }

    /// Bucket mask (`bucket_count - 1`).
    #[inline(always)]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of buckets.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for `key`.
    #[inline(always)]
    pub fn bucket_index(&self, key: u64) -> usize {
        bucket_of(key, self.mask) as usize
    }

    /// Address of `key`'s bucket header — computed without touching table
    /// memory, so it can be prefetched (the paper's code stage 0).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const Bucket {
        // SAFETY: bucket_index is always < buckets.len() by the mask.
        unsafe { self.buckets.as_ptr().add(self.bucket_index(key)) }
    }

    /// Resolve a chain index (read from some node's `next`) to the
    /// overflow node's stable address — the per-hop address computation
    /// that precedes the prefetch. One `lzcnt` plus one L1-resident
    /// directory load; the DRAM access is still the node itself.
    #[inline(always)]
    pub fn node_ptr(&self, idx: u32) -> *const Bucket {
        self.nodes.get(idx)
    }

    /// Address of bucket header `idx` (diagnostics/tests; probes use
    /// [`bucket_addr`](HashTable::bucket_addr)).
    #[inline]
    pub fn header_addr(&self, idx: usize) -> *const Bucket {
        &self.buckets[idx]
    }

    /// The table's chain-node arena (for allocation by build handles and
    /// index diagnostics in tests).
    #[inline(always)]
    pub fn nodes(&self) -> &IndexedArena<Bucket> {
        &self.nodes
    }

    /// Open a build handle that inserts through latches, allocating
    /// overflow nodes from the table's shared indexed arena.
    pub fn build_handle(&self) -> BuildHandle<'_> {
        BuildHandle { table: self, inserted: 0 }
    }

    /// Tuples inserted so far, as reported by **completed** build handles
    /// (O(1); used for chain-length estimation when auto-tuning GP/SPP's
    /// stage budget).
    #[inline]
    pub fn tuple_count(&self) -> u64 {
        self.tuples.load(Ordering::Acquire)
    }

    /// Walk `key`'s chain, returning every matching payload
    /// (single-threaded reference probe used by tests and baselines).
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: read-only phase traversal; nodes live in the arena
            // owned by self.
            let d = unsafe { (*node).data() };
            for i in 0..d.count() {
                if d.tuples[i].key == key {
                    out.push(d.tuples[i].payload);
                }
            }
            if d.next == NULL_INDEX {
                return out;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// First matching payload for `key`, if any.
    pub fn lookup_first(&self, key: u64) -> Option<u64> {
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: as in lookup_all.
            let d = unsafe { (*node).data() };
            for i in 0..d.count() {
                if d.tuples[i].key == key {
                    return Some(d.tuples[i].payload);
                }
            }
            if d.next == NULL_INDEX {
                return None;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Chain length (in nodes, counting the header) of bucket `idx`.
    pub fn chain_nodes(&self, idx: usize) -> usize {
        let mut node: *const Bucket = &self.buckets[idx];
        let mut n = 0usize;
        loop {
            // SAFETY: read-only phase traversal.
            let d = unsafe { (*node).data() };
            if n == 0 && d.count() == 0 {
                return 0; // empty bucket header
            }
            n += 1;
            if d.next == NULL_INDEX {
                return n;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Occupancy statistics over all chains.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats { buckets: self.buckets.len(), ..Default::default() };
        for i in 0..self.buckets.len() {
            let nodes = self.chain_nodes(i);
            if nodes == 0 {
                s.empty_buckets += 1;
            }
            s.total_nodes += nodes;
            s.max_chain = s.max_chain.max(nodes);
        }
        s
    }

    /// Total tuples stored (walks the table; for tests).
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.buckets.len() {
            let mut node: *const Bucket = &self.buckets[i];
            loop {
                // SAFETY: read-only phase traversal.
                let d = unsafe { (*node).data() };
                total += d.count();
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        total
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // --- Latch-free mutation epoch (frozen-boundary discipline) --------
    //
    // After `freeze()`, mutators never latch and never modify frozen
    // structure: an upsert that matches a frozen tuple `fetch_add`s its
    // payload (commutative — any interleaving sums identically), a
    // delete tombstones a key with one CAS, and a miss CAS-prepends a
    // fully initialized *fresh* single-tuple node at the header's `next`.
    // Because the chain head only ever moves by prepend, a failed CAS
    // simply re-walks the (grown) fresh prefix — no ABA, no locks, no
    // node is ever published half-written. The charged AMAC walk of
    // `amac_ops::mutate` covers exactly the frozen part of the chain,
    // which is immutable, so simulated counters are identical across
    // thread counts and schedulings.

    /// The reserved key value a latch-free delete tombstones a slot to.
    /// Workload keys never take this value ([`u64::MAX`]).
    pub const TOMBSTONE: u64 = u64::MAX;

    /// Enter (or re-observe) the latch-free mutation epoch: record the
    /// current arena length as the frozen boundary and return it. The
    /// first call wins; later calls (including concurrent ones racing
    /// before any mutation, when the length is still identical) return
    /// the recorded boundary. Mutation primitives call this themselves,
    /// so the epoch begins at the first latch-free mutation.
    pub fn freeze(&self) -> u32 {
        let len = self.nodes.len() as u32;
        match self.frozen.compare_exchange(u32::MAX, len, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => len,
            Err(cur) => cur,
        }
    }

    /// The frozen boundary ([`u32::MAX`] before [`freeze`](HashTable::freeze)
    /// — no node is fresh). Arena index `idx` is fresh iff
    /// `idx >= frozen_bound()`.
    #[inline(always)]
    pub fn frozen_bound(&self) -> u32 {
        self.frozen.load(Ordering::Acquire)
    }

    /// Follow `next` links from `idx` past the fresh prefix (nodes
    /// `>= bound`), returning the first frozen index or [`NULL_INDEX`].
    /// Fresh nodes only ever exist between the header and the first
    /// frozen node, so one skip per walk suffices.
    #[inline]
    pub fn skip_fresh(&self, mut idx: u32, bound: u32) -> u32 {
        while idx != NULL_INDEX && idx >= bound {
            // SAFETY: chain indices resolve into the table-owned arena.
            idx = unsafe { &*self.node_ptr(idx) }.next_atomic().load(Ordering::Acquire);
        }
        idx
    }

    /// Merge `delta` into the **first** live slot of `node` holding
    /// `key`, atomically. Returns true on a merge. `node` must be frozen
    /// (header or `idx < bound`): its `meta` is immutable, so the scan
    /// bound and the first-match position are schedule-independent.
    ///
    /// # Safety
    /// `node` must point at a header or arena node of this table.
    pub unsafe fn frozen_merge(&self, node: *const Bucket, key: u64, delta: u64) -> bool {
        let b = &*node;
        let count = (b.meta_atomic().load(Ordering::Relaxed) >> 24) as usize;
        for i in 0..count {
            if b.key_atomic(i).load(Ordering::Acquire) == key {
                b.payload_atomic(i).fetch_add(delta, Ordering::AcqRel);
                return true;
            }
        }
        false
    }

    /// Tombstone every live slot of `node` holding `key` (frozen nodes
    /// only). Returns the number of slots this call won (the CAS
    /// arbitrates concurrent deletes of the same key, so the global sum
    /// is exact).
    ///
    /// # Safety
    /// `node` must point at a header or arena node of this table.
    pub unsafe fn frozen_tombstone(&self, node: *const Bucket, key: u64) -> u64 {
        let b = &*node;
        let count = (b.meta_atomic().load(Ordering::Relaxed) >> 24) as usize;
        let mut won = 0;
        for i in 0..count {
            if b.key_atomic(i)
                .compare_exchange(key, Self::TOMBSTONE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                won += 1;
            }
        }
        won
    }

    /// The terminal action of a latch-free upsert that matched no frozen
    /// tuple: merge into the fresh prefix if some epoch mutation already
    /// created `key`'s node, else CAS-prepend a new single-tuple node.
    /// Returns true if a node was created. The retry loop re-walks the
    /// grown prefix after every lost CAS, so exactly one fresh node per
    /// (bucket, key) exists however the epoch's upserts interleave; a
    /// loser's pre-allocated node is abandoned unpublished (it is never
    /// reachable, only arena length observes it).
    pub fn fresh_upsert(&self, key: u64, delta: u64) -> bool {
        let bound = self.freeze();
        let header = self.bucket_addr(key);
        let mut fresh: Option<(u32, *mut Bucket)> = None;
        loop {
            // SAFETY: header is a valid bucket of this table.
            let head = unsafe { &*header }.next_atomic().load(Ordering::Acquire);
            let mut idx = head;
            while idx != NULL_INDEX && idx >= bound {
                // SAFETY: published fresh nodes are fully initialized
                // single-tuple nodes in the table-owned arena.
                let b = unsafe { &*self.node_ptr(idx) };
                if b.key_atomic(0).load(Ordering::Acquire) == key {
                    b.payload_atomic(0).fetch_add(delta, Ordering::AcqRel);
                    return false;
                }
                idx = b.next_atomic().load(Ordering::Acquire);
            }
            let (nidx, nptr) = *fresh.get_or_insert_with(|| self.nodes.alloc());
            // SAFETY: the node is unpublished — this thread owns it.
            unsafe {
                let d = (*nptr).data_mut();
                *d = BucketData::default();
                d.push(Tuple::new(key, delta), tag_of(key));
                d.next = head;
            }
            // Release-publish: the initialized node becomes reachable
            // only if the head did not move under us.
            if unsafe { &*header }
                .next_atomic()
                .compare_exchange(head, nidx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.tuples.fetch_add(1, Ordering::AcqRel);
                return true;
            }
        }
    }

    /// Unconditionally CAS-prepend a fresh `(key, payload)` node — the
    /// latch-free insert (no dedup; duplicate keys chain like the latched
    /// build's). O(1) beyond CAS retries.
    pub fn fresh_insert(&self, key: u64, payload: u64) {
        self.freeze();
        let header = self.bucket_addr(key);
        let (nidx, nptr) = self.nodes.alloc();
        loop {
            // SAFETY: header valid; node unpublished until the CAS.
            let head = unsafe { &*header }.next_atomic().load(Ordering::Acquire);
            unsafe {
                let d = (*nptr).data_mut();
                *d = BucketData::default();
                d.push(Tuple::new(key, payload), tag_of(key));
                d.next = head;
            }
            if unsafe { &*header }
                .next_atomic()
                .compare_exchange(head, nidx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.tuples.fetch_add(1, Ordering::AcqRel);
                return;
            }
        }
    }

    /// Tombstone `key` in the fresh prefix — the terminal action of a
    /// latch-free delete after its charged frozen walk. Returns the slots
    /// won. (Deleting a key the same epoch also upserts is outside the
    /// determinism discipline — see the `amac_ops::mutate` docs.)
    pub fn fresh_delete(&self, key: u64) -> u64 {
        let bound = self.freeze();
        let header = self.bucket_addr(key);
        // SAFETY: header valid; fresh nodes are published initialized.
        let mut idx = unsafe { &*header }.next_atomic().load(Ordering::Acquire);
        let mut won = 0;
        while idx != NULL_INDEX && idx >= bound {
            let b = unsafe { &*self.node_ptr(idx) };
            if b.key_atomic(0)
                .compare_exchange(key, Self::TOMBSTONE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                won += 1;
            }
            idx = b.next_atomic().load(Ordering::Acquire);
        }
        won
    }

    /// Whole-table latch-free upsert (`key += delta`, creating the tuple
    /// if absent): the recovery-replay primitive, equivalent to one
    /// charged `amac_ops::mutate` upsert without the simulation. Returns
    /// true if a node was created.
    pub fn upsert_latchfree(&self, key: u64, delta: u64) -> bool {
        let bound = self.freeze();
        let header = self.bucket_addr(key);
        // SAFETY: header/chain pointers resolve into this table.
        unsafe {
            if self.frozen_merge(header, key, delta) {
                return false;
            }
            let head = (*header).next_atomic().load(Ordering::Acquire);
            let mut idx = self.skip_fresh(head, bound);
            while idx != NULL_INDEX {
                let node = self.node_ptr(idx);
                if self.frozen_merge(node, key, delta) {
                    return false;
                }
                idx = (*node).next_atomic().load(Ordering::Acquire);
            }
        }
        self.fresh_upsert(key, delta)
    }

    /// Whole-table latch-free delete: tombstone every live `key` tuple,
    /// frozen and fresh. Returns the tombstoned count.
    pub fn delete_latchfree(&self, key: u64) -> u64 {
        let bound = self.freeze();
        let header = self.bucket_addr(key);
        // SAFETY: header/chain pointers resolve into this table.
        let mut won = unsafe { self.frozen_tombstone(header, key) };
        let head = unsafe { &*header }.next_atomic().load(Ordering::Acquire);
        let mut idx = self.skip_fresh(head, bound);
        while idx != NULL_INDEX {
            let node = self.node_ptr(idx);
            // SAFETY: as above.
            won += unsafe { self.frozen_tombstone(node, key) };
            idx = unsafe { &*node }.next_atomic().load(Ordering::Acquire);
        }
        won + self.fresh_delete(key)
    }

    /// All live `(key, payload)` tuples, sorted — the canonical logical
    /// contents (tombstones skipped). Quiescent phases only; this is what
    /// recovery equivalence checks compare.
    pub fn contents_sorted(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..self.buckets.len() {
            let mut node: *const Bucket = &self.buckets[i];
            loop {
                // SAFETY: read-only phase traversal.
                let d = unsafe { (*node).data() };
                for t in d.tuples.iter().take(d.count()) {
                    if t.key != Self::TOMBSTONE {
                        out.push((t.key, t.payload));
                    }
                }
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        out.sort_unstable();
        out
    }

    // --- Checkpointing --------------------------------------------------

    /// Deep-copy the table's physical state — bucket headers, every arena
    /// node in index order, the frozen boundary and the tuple count.
    /// Quiescent phases only (a serving checkpoint runs between waves).
    pub fn snapshot(&self) -> TableSnapshot {
        let bucket_data = (0..self.buckets.len())
            // SAFETY: quiescent — no concurrent mutation.
            .map(|i| unsafe { *self.buckets[i].data() })
            .collect();
        let node_data = (0..self.nodes.len() as u32)
            // SAFETY: as above; indices < len resolve to live nodes.
            .map(|i| unsafe { *(*self.node_ptr(i)).data() })
            .collect();
        TableSnapshot {
            bucket_data,
            node_data,
            frozen: self.frozen.load(Ordering::Acquire),
            tuples: self.tuples.load(Ordering::Acquire),
        }
    }

    /// Rebuild a table bit-identical to the one `snap` was taken from:
    /// same bucket headers, same arena nodes at the **same indices**
    /// (serial allocation is dense and in order), same frozen boundary —
    /// so replaying a WAL tail on the restored table walks byte-identical
    /// chains and re-creates fresh nodes at the original indices.
    pub fn restore(snap: &TableSnapshot) -> Self {
        let ht = Self::with_buckets(snap.bucket_data.len());
        assert_eq!(ht.bucket_count(), snap.bucket_data.len(), "snapshot bucket count is pow2");
        for (i, d) in snap.bucket_data.iter().enumerate() {
            // SAFETY: exclusive access — the table was just created.
            unsafe { *ht.buckets[i].data_mut() = *d };
        }
        for (i, d) in snap.node_data.iter().enumerate() {
            let (idx, ptr) = ht.nodes.alloc();
            assert_eq!(idx as usize, i, "serial arena allocation is dense");
            // SAFETY: freshly allocated node owned by this thread.
            unsafe { *(*ptr).data_mut() = *d };
        }
        ht.frozen.store(snap.frozen, Ordering::Release);
        ht.tuples.store(snap.tuples, Ordering::Release);
        ht
    }
}

// SAFETY: see the bucket module — latches guard mutation; probe phases are
// read-only; the node arena is owned by the table.
unsafe impl Send for HashTable {}
unsafe impl Sync for HashTable {}

/// Chain occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total bucket headers.
    pub buckets: usize,
    /// Headers with no tuples.
    pub empty_buckets: usize,
    /// Total chain nodes (headers that hold tuples + overflow nodes).
    pub total_nodes: usize,
    /// Longest chain in nodes.
    pub max_chain: usize,
}

impl TableStats {
    /// Mean nodes per non-empty bucket.
    pub fn avg_chain(&self) -> f64 {
        let occupied = self.buckets - self.empty_buckets;
        if occupied == 0 {
            0.0
        } else {
            self.total_nodes as f64 / occupied as f64
        }
    }
}

/// A deep copy of a [`HashTable`]'s physical state, as taken by
/// [`HashTable::snapshot`] — the checkpoint unit of the durability layer.
/// `Clone` so a sweep can restore the same checkpoint repeatedly.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    bucket_data: Vec<BucketData>,
    node_data: Vec<BucketData>,
    frozen: u32,
    tuples: u64,
}

impl TableSnapshot {
    /// Arena nodes captured (diagnostics; includes any abandoned nodes).
    pub fn node_count(&self) -> usize {
        self.node_data.len()
    }
}

/// An insertion session against a shared [`HashTable`].
///
/// Each build thread owns one handle; overflow nodes come from the
/// table's shared [`IndexedArena`] (a lock-free atomic bump), so the `u32`
/// chain indices every thread writes resolve through one address space.
pub struct BuildHandle<'t> {
    table: &'t HashTable,
    inserted: u64,
}

impl BuildHandle<'_> {
    /// The table this handle inserts into.
    #[inline]
    pub fn table(&self) -> &HashTable {
        self.table
    }

    /// Allocate a fresh overflow node, returning its chain index and
    /// stable address.
    #[inline]
    pub fn alloc_node(&mut self) -> (u32, *mut Bucket) {
        self.table.nodes.alloc()
    }

    /// Insert `(key, payload)`, spinning on the bucket latch (the
    /// baseline/GP/SPP latch discipline).
    pub fn insert(&mut self, key: u64, payload: u64) {
        let bucket = self.table.bucket_addr(key);
        // SAFETY: bucket_addr yields a valid bucket; we latch before
        // mutating.
        unsafe {
            (*bucket).latch.acquire();
            self.insert_latched(bucket, key, payload);
            (*bucket).latch.release();
        }
    }

    /// Insert under an **already-held** bucket latch (the AMAC build stage
    /// calls this after a successful `try_acquire`).
    ///
    /// O(1): fills the header's inline slots, then the newest overflow
    /// node, then splices a new node directly behind the header. Each
    /// stored tuple records its fingerprint in the node's tag word.
    ///
    /// # Safety
    /// `bucket` must be a bucket header of this handle's table and the
    /// calling thread must hold its latch.
    pub unsafe fn insert_latched(&mut self, bucket: *const Bucket, key: u64, payload: u64) {
        self.inserted += 1;
        let tag = tag_of(key);
        let d = (*bucket).data_mut();
        if d.count() < TUPLES_PER_NODE {
            d.push(Tuple::new(key, payload), tag);
            return;
        }
        let head = d.next;
        if head != NULL_INDEX {
            let hd = (*self.table.nodes.get(head)).data_mut();
            if hd.count() < TUPLES_PER_NODE {
                hd.push(Tuple::new(key, payload), tag);
                return;
            }
        }
        let (idx, node) = self.alloc_node();
        let nd = (*node).data_mut();
        nd.push(Tuple::new(key, payload), tag);
        nd.next = head;
        d.next = idx;
    }
}

impl Drop for BuildHandle<'_> {
    fn drop(&mut self) {
        self.table.tuples.fetch_add(self.inserted, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_rounds_to_pow2() {
        assert_eq!(HashTable::with_buckets(1000).bucket_count(), 1024);
        assert_eq!(HashTable::with_buckets(1).bucket_count(), 1);
        // 4096 tuples at 3/node → 1365 buckets → next pow2.
        assert_eq!(HashTable::for_tuples(4096).bucket_count(), 2048);
    }

    #[test]
    fn build_and_lookup_unique_keys() {
        let rel = Relation::dense_unique(10_000, 3);
        let ht = HashTable::build_serial(&rel);
        assert_eq!(ht.len(), 10_000);
        for t in &rel.tuples {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload), "key {}", t.key);
            assert_eq!(ht.lookup_all(t.key), vec![t.payload]);
        }
        assert_eq!(ht.lookup_first(999_999), None);
        assert!(ht.lookup_all(0).is_empty());
    }

    #[test]
    fn duplicate_keys_chain_in_one_bucket() {
        let ht = HashTable::with_buckets(64);
        {
            let mut h = ht.build_handle();
            for p in 0..100u64 {
                h.insert(7, p);
            }
        }
        let all = ht.lookup_all(7);
        assert_eq!(all.len(), 100);
        let set: std::collections::HashSet<u64> = all.into_iter().collect();
        assert_eq!(set.len(), 100, "all payloads preserved");
        let idx = ht.bucket_index(7);
        assert!(ht.chain_nodes(idx) >= 33, "duplicates must share a chain");
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let rel = Relation::zipf(20_000, 2_000, 0.9, 5);
        let ht = HashTable::build_serial(&rel);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in &rel.tuples {
            model.entry(t.key).or_default().push(t.payload);
        }
        for (k, v) in &model {
            let mut got = ht.lookup_all(*k);
            let mut want = v.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
        }
        assert_eq!(ht.len(), 20_000);
    }

    #[test]
    fn stats_reflect_occupancy() {
        let rel = Relation::dense_unique(8192, 9);
        let ht = HashTable::build_serial(&rel);
        let s = ht.stats();
        assert_eq!(s.buckets, 4096);
        assert!(s.total_nodes >= 4096 - s.empty_buckets);
        assert!(s.max_chain >= 1);
        assert!(s.avg_chain() >= 1.0);
    }

    #[test]
    fn chain_links_roundtrip_through_the_arena() {
        // Every reachable overflow node's index must resolve back to the
        // same address the chain walk sees (idx → ptr → idx).
        let ht = HashTable::with_buckets(4);
        {
            let mut h = ht.build_handle();
            for k in 0..200u64 {
                h.insert(k, k);
            }
        }
        let mut overflow_seen = 0usize;
        for b in 0..ht.bucket_count() {
            let mut d = unsafe { ht.buckets[b].data() };
            while d.next != NULL_INDEX {
                let ptr = ht.node_ptr(d.next);
                assert_eq!(ht.nodes().index_of(ptr), Some(d.next));
                overflow_seen += 1;
                d = unsafe { (*ptr).data() };
            }
        }
        assert_eq!(overflow_seen, ht.nodes().len(), "all allocated nodes reachable");
    }

    #[test]
    fn forced_collision_table_builds_deep_chains() {
        // Fig. 3's uniform experiment shape: n/8 buckets → 8 tuples per
        // bucket → ~8/3 ≈ 2.7 nodes per chain in the 3-tuple layout.
        let n = 1 << 12;
        let rel = Relation::dense_unique(n, 2);
        let ht = HashTable::with_buckets(n / 8);
        {
            let mut h = ht.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        let s = ht.stats();
        assert!(
            (2.4..=3.4).contains(&s.avg_chain()),
            "expected ~8/3 nodes/bucket, got {}",
            s.avg_chain()
        );
    }

    #[test]
    fn concurrent_build_preserves_all_tuples() {
        let n = 40_000;
        let rel = Relation::dense_unique(n, 13);
        let ht = HashTable::for_tuples(n);
        std::thread::scope(|scope| {
            for chunk in rel.tuples.chunks(n / 4) {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for t in chunk {
                        h.insert(t.key, t.payload);
                    }
                });
            }
        });
        assert_eq!(ht.len(), n);
        for t in rel.tuples.iter().step_by(97) {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload));
        }
    }

    #[test]
    fn concurrent_build_with_duplicates() {
        let ht = HashTable::with_buckets(16);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for i in 0..5000u64 {
                        h.insert(i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(ht.len(), 20_000);
        for k in 0..8u64 {
            assert_eq!(ht.lookup_all(k).len(), 2500, "key {k}");
        }
    }

    #[test]
    fn empty_table() {
        let ht = HashTable::with_buckets(8);
        assert!(ht.is_empty());
        assert_eq!(ht.stats().total_nodes, 0);
        assert_eq!(ht.chain_nodes(0), 0);
    }

    #[test]
    fn freeze_is_idempotent_and_bounds_fresh_nodes() {
        let rel = Relation::dense_unique(1000, 3);
        let ht = HashTable::build_serial(&rel);
        let built = ht.nodes().len() as u32;
        assert_eq!(ht.frozen_bound(), u32::MAX, "unfrozen until first freeze");
        assert_eq!(ht.freeze(), built);
        assert!(ht.upsert_latchfree(999_999, 5), "miss creates a fresh node");
        assert_eq!(ht.freeze(), built, "later freezes keep the original boundary");
        assert_eq!(ht.frozen_bound(), built);
    }

    #[test]
    fn latchfree_upsert_matches_model() {
        use std::collections::HashMap;
        let rel = Relation::zipf(4_000, 500, 0.8, 11);
        let ht = HashTable::build_serial(&rel);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in &rel.tuples {
            model.entry(t.key).or_default().push(t.payload);
        }
        // Upsert existing keys (merge into the chain's first match; with
        // build duplicates that is *a* copy, so compare per-key sums and
        // counts) and fresh keys (create).
        for k in 0..800u64 {
            let delta = k.wrapping_mul(3) + 1;
            let created = ht.upsert_latchfree(k, delta);
            let payloads = model.entry(k).or_default();
            if let Some(first) = payloads.first_mut() {
                assert!(!created, "existing key {k} merges");
                *first = first.wrapping_add(delta);
            } else {
                assert!(created, "missing key {k} inserts");
                payloads.push(delta);
            }
        }
        for (k, v) in &model {
            let got = ht.lookup_all(*k);
            assert_eq!(got.len(), v.len(), "key {k} tuple count");
            assert_eq!(
                got.iter().copied().sum::<u64>(),
                v.iter().copied().sum::<u64>(),
                "key {k} payload sum"
            );
        }
    }

    #[test]
    fn latchfree_insert_and_delete() {
        let ht = HashTable::with_buckets(16);
        for i in 0..50u64 {
            ht.fresh_insert(7, i);
        }
        assert_eq!(ht.lookup_all(7).len(), 50, "inserts never dedup");
        assert_eq!(ht.delete_latchfree(7), 50);
        assert!(ht.lookup_all(7).is_empty(), "tombstoned keys never match");
        assert_eq!(ht.delete_latchfree(7), 0, "second delete finds nothing");
        assert_eq!(ht.contents_sorted(), vec![]);
        // Deleting a frozen (built) key tombstones it too.
        let rel = Relation::dense_unique(300, 5);
        let ht = HashTable::build_serial(&rel);
        let victim = rel.tuples[10].key;
        assert_eq!(ht.delete_latchfree(victim), 1);
        assert_eq!(ht.lookup_first(victim), None);
        assert_eq!(ht.contents_sorted().len(), 299);
    }

    #[test]
    fn concurrent_latchfree_upserts_sum_exactly() {
        // 4 threads upsert overlapping key ranges; commutative fetch_add
        // plus CAS-prepend-with-recheck must agree with a serial model.
        let rel = Relation::dense_unique(2_000, 9);
        let ht = HashTable::build_serial(&rel);
        ht.freeze();
        const THREADS: u64 = 4;
        const KEYS: u64 = 3_000; // half existing, half fresh
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ht = &ht;
                scope.spawn(move || {
                    for k in 0..KEYS {
                        ht.upsert_latchfree(k + 1, t + 1);
                    }
                });
            }
        });
        let per_key: u64 = (1..=THREADS).sum();
        for k in 1..=KEYS {
            let total: u64 = ht.lookup_all(k).iter().sum();
            let base: u64 =
                rel.tuples.iter().filter(|t| t.key == k).map(|t| t.payload).sum::<u64>();
            assert_eq!(total, base + per_key, "key {k}");
        }
        // Exactly one fresh node exists per fresh key: live tuple count
        // is base + fresh keys.
        let fresh_keys = (1..=KEYS).filter(|k| rel.tuples.iter().all(|t| t.key != *k)).count();
        assert_eq!(ht.contents_sorted().len(), rel.len() + fresh_keys);
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let rel = Relation::zipf(3_000, 400, 0.7, 21);
        let ht = HashTable::build_serial(&rel);
        ht.freeze();
        for k in 0..500u64 {
            ht.upsert_latchfree(k * 3, k + 1);
        }
        ht.delete_latchfree(rel.tuples[0].key);
        let snap = ht.snapshot();
        let back = HashTable::restore(&snap);
        assert_eq!(back.bucket_count(), ht.bucket_count());
        assert_eq!(back.nodes().len(), ht.nodes().len(), "same arena shape");
        assert_eq!(back.frozen_bound(), ht.frozen_bound());
        assert_eq!(back.tuple_count(), ht.tuple_count());
        assert_eq!(back.contents_sorted(), ht.contents_sorted());
        // Physical layout identical: every bucket's chain walks the same
        // indices with the same bytes.
        for b in 0..ht.bucket_count() {
            let (mut a, mut r): (*const Bucket, *const Bucket) = (&ht.buckets[b], &back.buckets[b]);
            loop {
                let (da, dr) = unsafe { ((*a).data(), (*r).data()) };
                assert_eq!(da.meta, dr.meta);
                assert_eq!(da.next, dr.next);
                assert_eq!(
                    da.tuples.map(|t| (t.key, t.payload)),
                    dr.tuples.map(|t| (t.key, t.payload))
                );
                if da.next == NULL_INDEX {
                    break;
                }
                a = ht.node_ptr(da.next);
                r = back.node_ptr(dr.next);
            }
        }
        // Mutating the restored table diverges it, not the original.
        back.upsert_latchfree(123_456, 1);
        assert_ne!(back.contents_sorted(), ht.contents_sorted());
        assert!(snap.node_count() <= ht.nodes().len());
    }
}
