//! The hash-join table.

use crate::bucket::{Bucket, TUPLES_PER_NODE};
use amac_mem::arena::IndexedArena;
use amac_mem::hash::{bucket_of, next_pow2, tag_of};
use amac_mem::NULL_INDEX;
use amac_workload::{Relation, Tuple};
use core::sync::atomic::{AtomicU64, Ordering};

/// The chained hash table used by the hash-join workloads.
///
/// Bucket count is a power of two; keys are spread with the splitmix64
/// finalizer and masked (see `amac_mem::hash`). Inserts go to the head of
/// the chain in O(1) — bucket inline slots first, then the newest overflow
/// node, then a freshly allocated node spliced right behind the header —
/// matching Balkesen's NPO build and the paper's observation that build
/// cost is insensitive to skew (§5.1).
///
/// Chain nodes live in one table-owned [`IndexedArena`] and are linked by
/// `u32` index (see [`crate::bucket`] for the layout math); probes resolve
/// an index to its stable address with [`node_ptr`](HashTable::node_ptr)
/// before prefetching the next hop.
pub struct HashTable {
    buckets: amac_mem::align::AlignedBox<Bucket>,
    mask: u64,
    /// Overflow chain nodes, shared by every build handle; `u32` chain
    /// indices resolve into this arena for the table's whole lifetime.
    nodes: IndexedArena<Bucket>,
    /// Tuples inserted so far (merged from build handles on drop).
    tuples: AtomicU64,
}

impl HashTable {
    /// Create an empty table with at least `n_buckets` buckets (rounded up
    /// to a power of two).
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        HashTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            nodes: IndexedArena::new(),
            tuples: AtomicU64::new(0),
        }
    }

    /// Create an empty table sized for `n_tuples` build tuples at the
    /// paper's default load: one inline node per bucket on average
    /// (`buckets = n / TUPLES_PER_NODE`).
    pub fn for_tuples(n_tuples: usize) -> Self {
        Self::with_buckets((n_tuples / TUPLES_PER_NODE).max(1))
    }

    /// Build a table from `rel` on the calling thread (the reference
    /// no-prefetch build).
    pub fn build_serial(rel: &Relation) -> Self {
        let table = Self::for_tuples(rel.len());
        {
            let mut h = table.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        table
    }

    /// Bucket mask (`bucket_count - 1`).
    #[inline(always)]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of buckets.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for `key`.
    #[inline(always)]
    pub fn bucket_index(&self, key: u64) -> usize {
        bucket_of(key, self.mask) as usize
    }

    /// Address of `key`'s bucket header — computed without touching table
    /// memory, so it can be prefetched (the paper's code stage 0).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const Bucket {
        // SAFETY: bucket_index is always < buckets.len() by the mask.
        unsafe { self.buckets.as_ptr().add(self.bucket_index(key)) }
    }

    /// Resolve a chain index (read from some node's `next`) to the
    /// overflow node's stable address — the per-hop address computation
    /// that precedes the prefetch. One `lzcnt` plus one L1-resident
    /// directory load; the DRAM access is still the node itself.
    #[inline(always)]
    pub fn node_ptr(&self, idx: u32) -> *const Bucket {
        self.nodes.get(idx)
    }

    /// Address of bucket header `idx` (diagnostics/tests; probes use
    /// [`bucket_addr`](HashTable::bucket_addr)).
    #[inline]
    pub fn header_addr(&self, idx: usize) -> *const Bucket {
        &self.buckets[idx]
    }

    /// The table's chain-node arena (for allocation by build handles and
    /// index diagnostics in tests).
    #[inline(always)]
    pub fn nodes(&self) -> &IndexedArena<Bucket> {
        &self.nodes
    }

    /// Open a build handle that inserts through latches, allocating
    /// overflow nodes from the table's shared indexed arena.
    pub fn build_handle(&self) -> BuildHandle<'_> {
        BuildHandle { table: self, inserted: 0 }
    }

    /// Tuples inserted so far, as reported by **completed** build handles
    /// (O(1); used for chain-length estimation when auto-tuning GP/SPP's
    /// stage budget).
    #[inline]
    pub fn tuple_count(&self) -> u64 {
        self.tuples.load(Ordering::Acquire)
    }

    /// Walk `key`'s chain, returning every matching payload
    /// (single-threaded reference probe used by tests and baselines).
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: read-only phase traversal; nodes live in the arena
            // owned by self.
            let d = unsafe { (*node).data() };
            for i in 0..d.count() {
                if d.tuples[i].key == key {
                    out.push(d.tuples[i].payload);
                }
            }
            if d.next == NULL_INDEX {
                return out;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// First matching payload for `key`, if any.
    pub fn lookup_first(&self, key: u64) -> Option<u64> {
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: as in lookup_all.
            let d = unsafe { (*node).data() };
            for i in 0..d.count() {
                if d.tuples[i].key == key {
                    return Some(d.tuples[i].payload);
                }
            }
            if d.next == NULL_INDEX {
                return None;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Chain length (in nodes, counting the header) of bucket `idx`.
    pub fn chain_nodes(&self, idx: usize) -> usize {
        let mut node: *const Bucket = &self.buckets[idx];
        let mut n = 0usize;
        loop {
            // SAFETY: read-only phase traversal.
            let d = unsafe { (*node).data() };
            if n == 0 && d.count() == 0 {
                return 0; // empty bucket header
            }
            n += 1;
            if d.next == NULL_INDEX {
                return n;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Occupancy statistics over all chains.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats { buckets: self.buckets.len(), ..Default::default() };
        for i in 0..self.buckets.len() {
            let nodes = self.chain_nodes(i);
            if nodes == 0 {
                s.empty_buckets += 1;
            }
            s.total_nodes += nodes;
            s.max_chain = s.max_chain.max(nodes);
        }
        s
    }

    /// Total tuples stored (walks the table; for tests).
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.buckets.len() {
            let mut node: *const Bucket = &self.buckets[i];
            loop {
                // SAFETY: read-only phase traversal.
                let d = unsafe { (*node).data() };
                total += d.count();
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        total
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// SAFETY: see the bucket module — latches guard mutation; probe phases are
// read-only; the node arena is owned by the table.
unsafe impl Send for HashTable {}
unsafe impl Sync for HashTable {}

/// Chain occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total bucket headers.
    pub buckets: usize,
    /// Headers with no tuples.
    pub empty_buckets: usize,
    /// Total chain nodes (headers that hold tuples + overflow nodes).
    pub total_nodes: usize,
    /// Longest chain in nodes.
    pub max_chain: usize,
}

impl TableStats {
    /// Mean nodes per non-empty bucket.
    pub fn avg_chain(&self) -> f64 {
        let occupied = self.buckets - self.empty_buckets;
        if occupied == 0 {
            0.0
        } else {
            self.total_nodes as f64 / occupied as f64
        }
    }
}

/// An insertion session against a shared [`HashTable`].
///
/// Each build thread owns one handle; overflow nodes come from the
/// table's shared [`IndexedArena`] (a lock-free atomic bump), so the `u32`
/// chain indices every thread writes resolve through one address space.
pub struct BuildHandle<'t> {
    table: &'t HashTable,
    inserted: u64,
}

impl BuildHandle<'_> {
    /// The table this handle inserts into.
    #[inline]
    pub fn table(&self) -> &HashTable {
        self.table
    }

    /// Allocate a fresh overflow node, returning its chain index and
    /// stable address.
    #[inline]
    pub fn alloc_node(&mut self) -> (u32, *mut Bucket) {
        self.table.nodes.alloc()
    }

    /// Insert `(key, payload)`, spinning on the bucket latch (the
    /// baseline/GP/SPP latch discipline).
    pub fn insert(&mut self, key: u64, payload: u64) {
        let bucket = self.table.bucket_addr(key);
        // SAFETY: bucket_addr yields a valid bucket; we latch before
        // mutating.
        unsafe {
            (*bucket).latch.acquire();
            self.insert_latched(bucket, key, payload);
            (*bucket).latch.release();
        }
    }

    /// Insert under an **already-held** bucket latch (the AMAC build stage
    /// calls this after a successful `try_acquire`).
    ///
    /// O(1): fills the header's inline slots, then the newest overflow
    /// node, then splices a new node directly behind the header. Each
    /// stored tuple records its fingerprint in the node's tag word.
    ///
    /// # Safety
    /// `bucket` must be a bucket header of this handle's table and the
    /// calling thread must hold its latch.
    pub unsafe fn insert_latched(&mut self, bucket: *const Bucket, key: u64, payload: u64) {
        self.inserted += 1;
        let tag = tag_of(key);
        let d = (*bucket).data_mut();
        if d.count() < TUPLES_PER_NODE {
            d.push(Tuple::new(key, payload), tag);
            return;
        }
        let head = d.next;
        if head != NULL_INDEX {
            let hd = (*self.table.nodes.get(head)).data_mut();
            if hd.count() < TUPLES_PER_NODE {
                hd.push(Tuple::new(key, payload), tag);
                return;
            }
        }
        let (idx, node) = self.alloc_node();
        let nd = (*node).data_mut();
        nd.push(Tuple::new(key, payload), tag);
        nd.next = head;
        d.next = idx;
    }
}

impl Drop for BuildHandle<'_> {
    fn drop(&mut self) {
        self.table.tuples.fetch_add(self.inserted, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_rounds_to_pow2() {
        assert_eq!(HashTable::with_buckets(1000).bucket_count(), 1024);
        assert_eq!(HashTable::with_buckets(1).bucket_count(), 1);
        // 4096 tuples at 3/node → 1365 buckets → next pow2.
        assert_eq!(HashTable::for_tuples(4096).bucket_count(), 2048);
    }

    #[test]
    fn build_and_lookup_unique_keys() {
        let rel = Relation::dense_unique(10_000, 3);
        let ht = HashTable::build_serial(&rel);
        assert_eq!(ht.len(), 10_000);
        for t in &rel.tuples {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload), "key {}", t.key);
            assert_eq!(ht.lookup_all(t.key), vec![t.payload]);
        }
        assert_eq!(ht.lookup_first(999_999), None);
        assert!(ht.lookup_all(0).is_empty());
    }

    #[test]
    fn duplicate_keys_chain_in_one_bucket() {
        let ht = HashTable::with_buckets(64);
        {
            let mut h = ht.build_handle();
            for p in 0..100u64 {
                h.insert(7, p);
            }
        }
        let all = ht.lookup_all(7);
        assert_eq!(all.len(), 100);
        let set: std::collections::HashSet<u64> = all.into_iter().collect();
        assert_eq!(set.len(), 100, "all payloads preserved");
        let idx = ht.bucket_index(7);
        assert!(ht.chain_nodes(idx) >= 33, "duplicates must share a chain");
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let rel = Relation::zipf(20_000, 2_000, 0.9, 5);
        let ht = HashTable::build_serial(&rel);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in &rel.tuples {
            model.entry(t.key).or_default().push(t.payload);
        }
        for (k, v) in &model {
            let mut got = ht.lookup_all(*k);
            let mut want = v.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
        }
        assert_eq!(ht.len(), 20_000);
    }

    #[test]
    fn stats_reflect_occupancy() {
        let rel = Relation::dense_unique(8192, 9);
        let ht = HashTable::build_serial(&rel);
        let s = ht.stats();
        assert_eq!(s.buckets, 4096);
        assert!(s.total_nodes >= 4096 - s.empty_buckets);
        assert!(s.max_chain >= 1);
        assert!(s.avg_chain() >= 1.0);
    }

    #[test]
    fn chain_links_roundtrip_through_the_arena() {
        // Every reachable overflow node's index must resolve back to the
        // same address the chain walk sees (idx → ptr → idx).
        let ht = HashTable::with_buckets(4);
        {
            let mut h = ht.build_handle();
            for k in 0..200u64 {
                h.insert(k, k);
            }
        }
        let mut overflow_seen = 0usize;
        for b in 0..ht.bucket_count() {
            let mut d = unsafe { ht.buckets[b].data() };
            while d.next != NULL_INDEX {
                let ptr = ht.node_ptr(d.next);
                assert_eq!(ht.nodes().index_of(ptr), Some(d.next));
                overflow_seen += 1;
                d = unsafe { (*ptr).data() };
            }
        }
        assert_eq!(overflow_seen, ht.nodes().len(), "all allocated nodes reachable");
    }

    #[test]
    fn forced_collision_table_builds_deep_chains() {
        // Fig. 3's uniform experiment shape: n/8 buckets → 8 tuples per
        // bucket → ~8/3 ≈ 2.7 nodes per chain in the 3-tuple layout.
        let n = 1 << 12;
        let rel = Relation::dense_unique(n, 2);
        let ht = HashTable::with_buckets(n / 8);
        {
            let mut h = ht.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        let s = ht.stats();
        assert!(
            (2.4..=3.4).contains(&s.avg_chain()),
            "expected ~8/3 nodes/bucket, got {}",
            s.avg_chain()
        );
    }

    #[test]
    fn concurrent_build_preserves_all_tuples() {
        let n = 40_000;
        let rel = Relation::dense_unique(n, 13);
        let ht = HashTable::for_tuples(n);
        std::thread::scope(|scope| {
            for chunk in rel.tuples.chunks(n / 4) {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for t in chunk {
                        h.insert(t.key, t.payload);
                    }
                });
            }
        });
        assert_eq!(ht.len(), n);
        for t in rel.tuples.iter().step_by(97) {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload));
        }
    }

    #[test]
    fn concurrent_build_with_duplicates() {
        let ht = HashTable::with_buckets(16);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for i in 0..5000u64 {
                        h.insert(i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(ht.len(), 20_000);
        for k in 0..8u64 {
            assert_eq!(ht.lookup_all(k).len(), 2500, "key {k}");
        }
    }

    #[test]
    fn empty_table() {
        let ht = HashTable::with_buckets(8);
        assert!(ht.is_empty());
        assert_eq!(ht.stats().total_nodes, 0);
        assert_eq!(ht.chain_nodes(0), 0);
    }
}
