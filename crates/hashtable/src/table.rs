//! The hash-join table.

use crate::bucket::{Bucket, TUPLES_PER_NODE};
use amac_mem::arena::Arena;
use amac_mem::hash::{bucket_of, next_pow2};
use amac_workload::{Relation, Tuple};
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The chained hash table used by the hash-join workloads.
///
/// Bucket count is a power of two; keys are spread with the splitmix64
/// finalizer and masked (see `amac_mem::hash`). Inserts go to the head of
/// the chain in O(1) — bucket inline slots first, then the newest overflow
/// node, then a freshly allocated node spliced right behind the header —
/// matching Balkesen's NPO build and the paper's observation that build
/// cost is insensitive to skew (§5.1).
pub struct HashTable {
    buckets: amac_mem::align::AlignedBox<Bucket>,
    mask: u64,
    /// Overflow-node arenas: the serial one plus any donated by build
    /// threads. Their node addresses are referenced by chain pointers, so
    /// they must live exactly as long as the buckets.
    arenas: Mutex<Vec<Arena<Bucket>>>,
    /// Tuples inserted so far (merged from build handles on drop).
    tuples: AtomicU64,
}

impl HashTable {
    /// Create an empty table with at least `n_buckets` buckets (rounded up
    /// to a power of two).
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        HashTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            arenas: Mutex::new(Vec::new()),
            tuples: AtomicU64::new(0),
        }
    }

    /// Create an empty table sized for `n_tuples` build tuples at the
    /// paper's default load: one inline node per bucket on average
    /// (`buckets = n / TUPLES_PER_NODE`).
    pub fn for_tuples(n_tuples: usize) -> Self {
        Self::with_buckets((n_tuples / TUPLES_PER_NODE).max(1))
    }

    /// Build a table from `rel` on the calling thread (the reference
    /// no-prefetch build).
    pub fn build_serial(rel: &Relation) -> Self {
        let table = Self::for_tuples(rel.len());
        {
            let mut h = table.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        table
    }

    /// Bucket mask (`bucket_count - 1`).
    #[inline(always)]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of buckets.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for `key`.
    #[inline(always)]
    pub fn bucket_index(&self, key: u64) -> usize {
        bucket_of(key, self.mask) as usize
    }

    /// Address of `key`'s bucket header — computed without touching table
    /// memory, so it can be prefetched (the paper's code stage 0).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const Bucket {
        // SAFETY: bucket_index is always < buckets.len() by the mask.
        unsafe { self.buckets.as_ptr().add(self.bucket_index(key)) }
    }

    /// Open a build handle that inserts through latches and donates its
    /// overflow arena back to the table on drop.
    pub fn build_handle(&self) -> BuildHandle<'_> {
        BuildHandle { table: self, arena: Some(Arena::new()), inserted: 0 }
    }

    /// Tuples inserted so far, as reported by **completed** build handles
    /// (O(1); used for chain-length estimation when auto-tuning GP/SPP's
    /// stage budget).
    #[inline]
    pub fn tuple_count(&self) -> u64 {
        self.tuples.load(Ordering::Acquire)
    }

    /// Walk `key`'s chain, returning every matching payload
    /// (single-threaded reference probe used by tests and baselines).
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.bucket_addr(key);
        while !node.is_null() {
            // SAFETY: read-only phase traversal; nodes live in arenas owned
            // by self.
            let d = unsafe { (*node).data() };
            for i in 0..d.count as usize {
                if d.tuples[i].key == key {
                    out.push(d.tuples[i].payload);
                }
            }
            node = d.next;
        }
        out
    }

    /// First matching payload for `key`, if any.
    pub fn lookup_first(&self, key: u64) -> Option<u64> {
        let mut node = self.bucket_addr(key);
        while !node.is_null() {
            // SAFETY: as in lookup_all.
            let d = unsafe { (*node).data() };
            for i in 0..d.count as usize {
                if d.tuples[i].key == key {
                    return Some(d.tuples[i].payload);
                }
            }
            node = d.next;
        }
        None
    }

    /// Chain length (in nodes, counting the header) of bucket `idx`.
    pub fn chain_nodes(&self, idx: usize) -> usize {
        let mut n = 0usize;
        let mut node: *const Bucket = &self.buckets[idx];
        while !node.is_null() {
            // SAFETY: read-only phase traversal.
            let d = unsafe { (*node).data() };
            if n == 0 && d.count == 0 {
                return 0; // empty bucket header
            }
            n += 1;
            node = d.next;
        }
        n
    }

    /// Occupancy statistics over all chains.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats { buckets: self.buckets.len(), ..Default::default() };
        for i in 0..self.buckets.len() {
            let nodes = self.chain_nodes(i);
            if nodes == 0 {
                s.empty_buckets += 1;
            }
            s.total_nodes += nodes;
            s.max_chain = s.max_chain.max(nodes);
        }
        s
    }

    /// Total tuples stored (walks the table; for tests).
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.buckets.len() {
            let mut node: *const Bucket = &self.buckets[i];
            while !node.is_null() {
                // SAFETY: read-only phase traversal.
                let d = unsafe { (*node).data() };
                total += d.count as usize;
                node = d.next;
            }
        }
        total
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// SAFETY: see the bucket module — latches guard mutation; probe phases are
// read-only; arenas are owned by the table.
unsafe impl Send for HashTable {}
unsafe impl Sync for HashTable {}

/// Chain occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total bucket headers.
    pub buckets: usize,
    /// Headers with no tuples.
    pub empty_buckets: usize,
    /// Total chain nodes (headers that hold tuples + overflow nodes).
    pub total_nodes: usize,
    /// Longest chain in nodes.
    pub max_chain: usize,
}

impl TableStats {
    /// Mean nodes per non-empty bucket.
    pub fn avg_chain(&self) -> f64 {
        let occupied = self.buckets - self.empty_buckets;
        if occupied == 0 {
            0.0
        } else {
            self.total_nodes as f64 / occupied as f64
        }
    }
}

/// An insertion session against a shared [`HashTable`].
///
/// Each build thread owns one handle; overflow nodes come from the
/// handle's private arena (no allocator contention), and the arena is
/// donated to the table when the handle drops, keeping chain pointers
/// valid.
pub struct BuildHandle<'t> {
    table: &'t HashTable,
    arena: Option<Arena<Bucket>>,
    inserted: u64,
}

impl BuildHandle<'_> {
    /// The table this handle inserts into.
    #[inline]
    pub fn table(&self) -> &HashTable {
        self.table
    }

    /// Allocate a fresh overflow node from this handle's arena.
    #[inline]
    pub fn alloc_node(&mut self) -> *mut Bucket {
        self.arena.as_mut().expect("arena present until drop").alloc()
    }

    /// Insert `(key, payload)`, spinning on the bucket latch (the
    /// baseline/GP/SPP latch discipline).
    pub fn insert(&mut self, key: u64, payload: u64) {
        let bucket = self.table.bucket_addr(key);
        // SAFETY: bucket_addr yields a valid bucket; we latch before
        // mutating.
        unsafe {
            (*bucket).latch.acquire();
            self.insert_latched(bucket, key, payload);
            (*bucket).latch.release();
        }
    }

    /// Insert under an **already-held** bucket latch (the AMAC build stage
    /// calls this after a successful `try_acquire`).
    ///
    /// O(1): fills the header's inline slots, then the newest overflow
    /// node, then splices a new node directly behind the header.
    ///
    /// # Safety
    /// `bucket` must be a bucket header of this handle's table and the
    /// calling thread must hold its latch.
    pub unsafe fn insert_latched(&mut self, bucket: *const Bucket, key: u64, payload: u64) {
        self.inserted += 1;
        let d = (*bucket).data_mut();
        if (d.count as usize) < TUPLES_PER_NODE {
            d.tuples[d.count as usize] = Tuple::new(key, payload);
            d.count += 1;
            return;
        }
        let head = d.next;
        if !head.is_null() {
            let hd = (*head).data_mut();
            if (hd.count as usize) < TUPLES_PER_NODE {
                hd.tuples[hd.count as usize] = Tuple::new(key, payload);
                hd.count += 1;
                return;
            }
        }
        let node = self.alloc_node();
        let nd = (*node).data_mut();
        nd.tuples[0] = Tuple::new(key, payload);
        nd.count = 1;
        nd.next = head;
        d.next = node;
    }
}

impl Drop for BuildHandle<'_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            self.table.arenas.lock().expect("arena registry poisoned").push(arena);
        }
        self.table.tuples.fetch_add(self.inserted, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_rounds_to_pow2() {
        assert_eq!(HashTable::with_buckets(1000).bucket_count(), 1024);
        assert_eq!(HashTable::with_buckets(1).bucket_count(), 1);
        assert_eq!(HashTable::for_tuples(4096).bucket_count(), 2048);
    }

    #[test]
    fn build_and_lookup_unique_keys() {
        let rel = Relation::dense_unique(10_000, 3);
        let ht = HashTable::build_serial(&rel);
        assert_eq!(ht.len(), 10_000);
        for t in &rel.tuples {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload), "key {}", t.key);
            assert_eq!(ht.lookup_all(t.key), vec![t.payload]);
        }
        assert_eq!(ht.lookup_first(999_999), None);
        assert!(ht.lookup_all(0).is_empty());
    }

    #[test]
    fn duplicate_keys_chain_in_one_bucket() {
        let ht = HashTable::with_buckets(64);
        {
            let mut h = ht.build_handle();
            for p in 0..100u64 {
                h.insert(7, p);
            }
        }
        let all = ht.lookup_all(7);
        assert_eq!(all.len(), 100);
        let set: std::collections::HashSet<u64> = all.into_iter().collect();
        assert_eq!(set.len(), 100, "all payloads preserved");
        let idx = ht.bucket_index(7);
        assert!(ht.chain_nodes(idx) >= 50, "duplicates must share a chain");
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let rel = Relation::zipf(20_000, 2_000, 0.9, 5);
        let ht = HashTable::build_serial(&rel);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in &rel.tuples {
            model.entry(t.key).or_default().push(t.payload);
        }
        for (k, v) in &model {
            let mut got = ht.lookup_all(*k);
            let mut want = v.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
        }
        assert_eq!(ht.len(), 20_000);
    }

    #[test]
    fn stats_reflect_occupancy() {
        let rel = Relation::dense_unique(8192, 9);
        let ht = HashTable::build_serial(&rel);
        let s = ht.stats();
        assert_eq!(s.buckets, 4096);
        assert!(s.total_nodes >= 4096 - s.empty_buckets);
        assert!(s.max_chain >= 1);
        assert!(s.avg_chain() >= 1.0);
    }

    #[test]
    fn forced_collision_table_builds_deep_chains() {
        // Fig. 3's uniform-4 experiment: n/8 buckets → 4 nodes per bucket.
        let n = 1 << 12;
        let rel = Relation::dense_unique(n, 2);
        let ht = HashTable::with_buckets(n / 8);
        {
            let mut h = ht.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        let s = ht.stats();
        assert!(
            (3.5..=4.5).contains(&s.avg_chain()),
            "expected ~4 nodes/bucket, got {}",
            s.avg_chain()
        );
    }

    #[test]
    fn concurrent_build_preserves_all_tuples() {
        let n = 40_000;
        let rel = Relation::dense_unique(n, 13);
        let ht = HashTable::for_tuples(n);
        std::thread::scope(|scope| {
            for chunk in rel.tuples.chunks(n / 4) {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for t in chunk {
                        h.insert(t.key, t.payload);
                    }
                });
            }
        });
        assert_eq!(ht.len(), n);
        for t in rel.tuples.iter().step_by(97) {
            assert_eq!(ht.lookup_first(t.key), Some(t.payload));
        }
    }

    #[test]
    fn concurrent_build_with_duplicates() {
        let ht = HashTable::with_buckets(16);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for i in 0..5000u64 {
                        h.insert(i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(ht.len(), 20_000);
        for k in 0..8u64 {
            assert_eq!(ht.lookup_all(k).len(), 2500, "key {k}");
        }
    }

    #[test]
    fn empty_table() {
        let ht = HashTable::with_buckets(8);
        assert!(ht.is_empty());
        assert_eq!(ht.stats().total_nodes, 0);
        assert_eq!(ht.chain_nodes(0), 0);
    }
}
