//! The seed's pointer-linked 2-tuple node layout, kept alive for the
//! layout A/B.
//!
//! This module is a faithful copy of the pre-tag-probed design: a 64-byte
//! node holding a 1-byte count, **two** 16-byte tuples and an 8-byte
//! `next` pointer, with overflow nodes drawn from per-handle arenas that
//! are donated back to the table. It exists so `bench/bin/layout` and the
//! equivalence tests can run the *same* probe and group-by workloads over
//! both layouts and report the hop savings as a deterministic metric —
//! see [`crate::bucket`] for what the redesign changed and why.
//!
//! Nothing outside the A/B harness should depend on these types.

use amac_mem::arena::Arena;
use amac_mem::hash::{bucket_of, next_pow2};
use amac_mem::latch::Latch;
use amac_workload::{Relation, Tuple};
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuples per node in the legacy layout.
pub const LEGACY_TUPLES_PER_NODE: usize = 2;

/// Mutable interior of a legacy chain node: 1-byte count (padded), two
/// tuples, 8-byte next pointer — the paper's literal C struct.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct LegacyBucketData {
    /// Number of occupied tuple slots (0..=2).
    pub count: u8,
    /// Inline tuple storage; slots `0..count` are valid.
    pub tuples: [Tuple; LEGACY_TUPLES_PER_NODE],
    /// Next chain node, or null.
    pub next: *mut LegacyBucket,
}

impl Default for LegacyBucketData {
    fn default() -> Self {
        LegacyBucketData {
            count: 0,
            tuples: [Tuple::default(); LEGACY_TUPLES_PER_NODE],
            next: core::ptr::null_mut(),
        }
    }
}

/// One cache-line legacy chain node.
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct LegacyBucket {
    /// Chain latch (meaningful on headers).
    pub latch: Latch,
    data: UnsafeCell<LegacyBucketData>,
}

// SAFETY: same discipline as `Bucket` — mutation under the header latch,
// read-only traversal otherwise, nodes owned by (donated to) the table.
unsafe impl Send for LegacyBucket {}
unsafe impl Sync for LegacyBucket {}

impl LegacyBucket {
    /// Read the node payload.
    ///
    /// # Safety
    /// No concurrent mutation (read-only phase or latch held).
    #[inline(always)]
    pub unsafe fn data(&self) -> &LegacyBucketData {
        &*self.data.get()
    }

    /// Mutate the node payload.
    ///
    /// # Safety
    /// Caller holds the governing header latch (or exclusive access).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut LegacyBucketData {
        &mut *self.data.get()
    }
}

/// The legacy chained hash-join table (pointer links, 2 tuples/node).
pub struct LegacyHashTable {
    buckets: amac_mem::align::AlignedBox<LegacyBucket>,
    mask: u64,
    arenas: Mutex<Vec<Arena<LegacyBucket>>>,
    tuples: AtomicU64,
}

// SAFETY: as for `HashTable`.
unsafe impl Send for LegacyHashTable {}
unsafe impl Sync for LegacyHashTable {}

impl LegacyHashTable {
    /// Create an empty table with at least `n_buckets` buckets.
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        LegacyHashTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            arenas: Mutex::new(Vec::new()),
            tuples: AtomicU64::new(0),
        }
    }

    /// Size for `n_tuples` at the legacy default load (2 tuples/bucket).
    pub fn for_tuples(n_tuples: usize) -> Self {
        Self::with_buckets((n_tuples / LEGACY_TUPLES_PER_NODE).max(1))
    }

    /// Build from `rel` on the calling thread.
    pub fn build_serial(rel: &Relation) -> Self {
        let table = Self::for_tuples(rel.len());
        {
            let mut h = table.build_handle();
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        table
    }

    /// Number of buckets.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Header address for `key` (stage-0 prefetch target).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const LegacyBucket {
        // SAFETY: masked index < len.
        unsafe { self.buckets.as_ptr().add(bucket_of(key, self.mask) as usize) }
    }

    /// Tuples inserted by completed handles.
    #[inline]
    pub fn tuple_count(&self) -> u64 {
        self.tuples.load(Ordering::Acquire)
    }

    /// Open an insertion handle (private overflow arena, donated on drop).
    pub fn build_handle(&self) -> LegacyBuildHandle<'_> {
        LegacyBuildHandle { table: self, arena: Some(Arena::new()), inserted: 0 }
    }

    /// Reference probe: every matching payload for `key`.
    pub fn lookup_all(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = self.bucket_addr(key);
        while !node.is_null() {
            // SAFETY: read-only phase traversal.
            let d = unsafe { (*node).data() };
            for i in 0..d.count as usize {
                if d.tuples[i].key == key {
                    out.push(d.tuples[i].payload);
                }
            }
            node = d.next;
        }
        out
    }

    /// Total tuples stored (walks the table; for tests).
    pub fn len(&self) -> usize {
        let mut total = 0usize;
        for i in 0..self.buckets.len() {
            let mut node: *const LegacyBucket = &self.buckets[i];
            while !node.is_null() {
                // SAFETY: read-only phase traversal.
                let d = unsafe { (*node).data() };
                total += d.count as usize;
                node = d.next;
            }
        }
        total
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Insertion session against a [`LegacyHashTable`].
pub struct LegacyBuildHandle<'t> {
    table: &'t LegacyHashTable,
    arena: Option<Arena<LegacyBucket>>,
    inserted: u64,
}

impl LegacyBuildHandle<'_> {
    /// The table this handle inserts into.
    #[inline]
    pub fn table(&self) -> &LegacyHashTable {
        self.table
    }

    /// Insert `(key, payload)` under the bucket latch.
    pub fn insert(&mut self, key: u64, payload: u64) {
        let bucket = self.table.bucket_addr(key);
        // SAFETY: valid header; mutation under its latch.
        unsafe {
            (*bucket).latch.acquire();
            self.insert_latched(bucket, key, payload);
            (*bucket).latch.release();
        }
    }

    /// Insert under an already-held bucket latch (AMAC build stage).
    ///
    /// # Safety
    /// `bucket` must be a header of this handle's table; caller holds its
    /// latch.
    pub unsafe fn insert_latched(&mut self, bucket: *const LegacyBucket, key: u64, payload: u64) {
        self.inserted += 1;
        let d = (*bucket).data_mut();
        if (d.count as usize) < LEGACY_TUPLES_PER_NODE {
            d.tuples[d.count as usize] = Tuple::new(key, payload);
            d.count += 1;
            return;
        }
        let head = d.next;
        if !head.is_null() {
            let hd = (*head).data_mut();
            if (hd.count as usize) < LEGACY_TUPLES_PER_NODE {
                hd.tuples[hd.count as usize] = Tuple::new(key, payload);
                hd.count += 1;
                return;
            }
        }
        let node = self.arena.as_mut().expect("arena present until drop").alloc();
        let nd = (*node).data_mut();
        nd.tuples[0] = Tuple::new(key, payload);
        nd.count = 1;
        nd.next = head;
        d.next = node;
    }
}

impl Drop for LegacyBuildHandle<'_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            self.table.arenas.lock().expect("arena registry poisoned").push(arena);
        }
        self.table.tuples.fetch_add(self.inserted, Ordering::AcqRel);
    }
}

/// Interior of a legacy aggregate node (pointer-linked).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct LegacyAggData {
    /// The group key (valid when `aggs.count > 0`).
    pub key: u64,
    /// The running aggregates; `count == 0` marks an unoccupied header.
    pub aggs: crate::agg::AggValues,
    /// Next chain node, or null.
    pub next: *mut LegacyAggBucket,
}

impl Default for LegacyAggData {
    fn default() -> Self {
        LegacyAggData {
            key: 0,
            aggs: crate::agg::AggValues { count: 0, sum: 0, min: u64::MAX, max: 0, sumsq: 0 },
            next: core::ptr::null_mut(),
        }
    }
}

/// One legacy aggregate chain node.
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct LegacyAggBucket {
    /// Chain latch (headers only).
    pub latch: Latch,
    data: UnsafeCell<LegacyAggData>,
}

// SAFETY: as for `AggBucket`.
unsafe impl Send for LegacyAggBucket {}
unsafe impl Sync for LegacyAggBucket {}

impl LegacyAggBucket {
    /// Read the node payload.
    ///
    /// # Safety
    /// No concurrent mutation (read-only phase or latch held).
    #[inline(always)]
    pub unsafe fn data(&self) -> &LegacyAggData {
        &*self.data.get()
    }

    /// Mutate the node payload.
    ///
    /// # Safety
    /// Caller holds the governing header latch (or exclusive access).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut LegacyAggData {
        &mut *self.data.get()
    }
}

/// The legacy group-by table (pointer-linked aggregate chains).
pub struct LegacyAggTable {
    buckets: amac_mem::align::AlignedBox<LegacyAggBucket>,
    mask: u64,
    arenas: Mutex<Vec<Arena<LegacyAggBucket>>>,
}

// SAFETY: as for `AggTable`.
unsafe impl Send for LegacyAggTable {}
unsafe impl Sync for LegacyAggTable {}

impl LegacyAggTable {
    /// Create a table with at least `n_buckets` buckets.
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        LegacyAggTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            arenas: Mutex::new(Vec::new()),
        }
    }

    /// Size for `n_groups` distinct keys.
    pub fn for_groups(n_groups: usize) -> Self {
        Self::with_buckets(n_groups.max(1))
    }

    /// Header address for `key`.
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const LegacyAggBucket {
        // SAFETY: masked index < len.
        unsafe { self.buckets.as_ptr().add(bucket_of(key, self.mask) as usize) }
    }

    /// Open an update session.
    pub fn handle(&self) -> LegacyAggHandle<'_> {
        LegacyAggHandle { table: self, arena: Some(Arena::new()) }
    }

    /// Read a group's aggregates (read-only phase).
    pub fn get(&self, key: u64) -> Option<crate::agg::AggValues> {
        let mut node = self.bucket_addr(key);
        while !node.is_null() {
            // SAFETY: read-only phase.
            let d = unsafe { (*node).data() };
            if d.aggs.count > 0 && d.key == key {
                return Some(d.aggs);
            }
            node = d.next;
        }
        None
    }

    /// Snapshot every group (read-only phase).
    pub fn groups(&self) -> Vec<(u64, crate::agg::AggValues)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut node: *const LegacyAggBucket = b;
            while !node.is_null() {
                // SAFETY: read-only phase.
                let d = unsafe { (*node).data() };
                if d.aggs.count > 0 {
                    out.push((d.key, d.aggs));
                }
                node = d.next;
            }
        }
        out
    }

    /// Number of distinct groups stored.
    pub fn group_count(&self) -> usize {
        self.groups().len()
    }
}

/// Update session against a [`LegacyAggTable`].
pub struct LegacyAggHandle<'t> {
    table: &'t LegacyAggTable,
    arena: Option<Arena<LegacyAggBucket>>,
}

impl LegacyAggHandle<'_> {
    /// The table this handle updates.
    #[inline]
    pub fn table(&self) -> &LegacyAggTable {
        self.table
    }

    /// Allocate a fresh chain node from the private arena.
    #[inline]
    pub fn alloc_node(&mut self) -> *mut LegacyAggBucket {
        self.arena.as_mut().expect("arena present until drop").alloc()
    }

    /// Aggregate `(key, payload)`, spinning on the header latch.
    pub fn update(&mut self, key: u64, payload: u64) {
        let header = self.table.bucket_addr(key);
        // SAFETY: valid header; mutation under its latch.
        unsafe {
            (*header).latch.acquire();
            self.update_latched(header, key, payload);
            (*header).latch.release();
        }
    }

    /// Aggregate under an already-held header latch (AMAC stage code).
    ///
    /// # Safety
    /// `header` must be a header of this handle's table; caller holds its
    /// latch.
    pub unsafe fn update_latched(
        &mut self,
        header: *const LegacyAggBucket,
        key: u64,
        payload: u64,
    ) {
        use crate::agg::AggValues;
        let mut node = header as *mut LegacyAggBucket;
        loop {
            let d = (*node).data_mut();
            if d.aggs.count == 0 {
                d.key = key;
                d.aggs = AggValues::first(payload);
                return;
            }
            if d.key == key {
                d.aggs.update(payload);
                return;
            }
            if d.next.is_null() {
                let fresh = self.alloc_node();
                let fd = (*fresh).data_mut();
                fd.key = key;
                fd.aggs = AggValues::first(payload);
                d.next = fresh;
                return;
            }
            node = d.next;
        }
    }
}

impl Drop for LegacyAggHandle<'_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            self.table.arenas.lock().expect("arena registry poisoned").push(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_layout_is_the_seed_layout() {
        // 1B count (+7 pad) + 32B tuples + 8B next = 48; node = one line.
        assert_eq!(core::mem::size_of::<LegacyBucketData>(), 48);
        assert_eq!(core::mem::size_of::<LegacyBucket>(), 64);
        assert_eq!(core::mem::size_of::<LegacyAggBucket>(), 64);
        assert_eq!(LEGACY_TUPLES_PER_NODE, 2);
    }

    #[test]
    fn legacy_table_matches_new_table_contents() {
        let rel = Relation::zipf(10_000, 1_500, 0.8, 0x1E6);
        let legacy = LegacyHashTable::build_serial(&rel);
        let new = crate::HashTable::build_serial(&rel);
        assert_eq!(legacy.len(), new.len());
        let mut keys: Vec<u64> = rel.tuples.iter().map(|t| t.key).collect();
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let mut a = legacy.lookup_all(k);
            let mut b = new.lookup_all(k);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "key {k}");
        }
    }

    #[test]
    fn legacy_agg_matches_new_agg() {
        let t_old = LegacyAggTable::for_groups(32);
        let t_new = crate::AggTable::for_groups(32);
        {
            let mut ho = t_old.handle();
            let mut hn = t_new.handle();
            for i in 0..5000u64 {
                ho.update(i % 57, i);
                hn.update(i % 57, i);
            }
        }
        let mut a = t_old.groups();
        let mut b = t_new.groups();
        a.sort_by_key(|(k, _)| *k);
        b.sort_by_key(|(k, _)| *k);
        assert_eq!(a, b, "legacy and tag-probed aggregates must be bit-identical");
    }

    #[test]
    fn legacy_concurrent_build() {
        let ht = LegacyHashTable::with_buckets(16);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let ht = &ht;
                scope.spawn(move || {
                    let mut h = ht.build_handle();
                    for i in 0..2500u64 {
                        h.insert(i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(ht.len(), 10_000);
    }
}
