//! The group-by aggregate table.
//!
//! "For the group-by workload, we extend the hash table used in hash join
//! with an additional aggregation field" (§4). We give each distinct key
//! one chain node carrying the paper's six aggregates — count, sum, min,
//! max, sum-of-squares stored, average derived from sum/count at read time
//! — which keeps a node (plus latch and next pointer) exactly one cache
//! line.
//!
//! All aggregates are order-independent (count/min/max, wrapping
//! sum/sumsq), so any interleaving of updates — across AMAC slots,
//! morsels, or threads — produces bit-identical tables; the fused
//! pipeline equivalence tests rely on this.

use amac_mem::arena::IndexedArena;
use amac_mem::hash::{bucket_of, next_pow2};
use amac_mem::latch::Latch;
use amac_mem::NULL_INDEX;
use core::cell::UnsafeCell;
use core::ptr::addr_of_mut;
use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Aggregates maintained per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggValues {
    /// Number of aggregated payloads.
    pub count: u64,
    /// Sum of payloads (wrapping).
    pub sum: u64,
    /// Minimum payload.
    pub min: u64,
    /// Maximum payload.
    pub max: u64,
    /// Sum of squared payloads (wrapping).
    pub sumsq: u64,
}

impl AggValues {
    /// Initial aggregates for a group's first payload.
    #[inline(always)]
    pub fn first(payload: u64) -> Self {
        AggValues {
            count: 1,
            sum: payload,
            min: payload,
            max: payload,
            sumsq: payload.wrapping_mul(payload),
        }
    }

    /// Fold one more payload in (the paper's per-match aggregate update).
    #[inline(always)]
    pub fn update(&mut self, payload: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(payload);
        self.min = self.min.min(payload);
        self.max = self.max.max(payload);
        self.sumsq = self.sumsq.wrapping_add(payload.wrapping_mul(payload));
    }

    /// The sixth aggregate: average, derived from sum and count.
    #[inline]
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Mutable interior of an aggregate node.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct AggData {
    /// The group key (valid when `count > 0`).
    pub key: u64,
    /// The running aggregates; `count == 0` marks an unoccupied header.
    pub aggs: AggValues,
    /// Arena index of the next chain node, or [`NULL_INDEX`]. The `u32`
    /// link (vs the seed's 8-byte pointer) keeps the node at 56 payload
    /// bytes — same one-line budget as the probe-table node.
    pub next: u32,
}

impl Default for AggData {
    fn default() -> Self {
        AggData {
            key: 0,
            aggs: AggValues { count: 0, sum: 0, min: u64::MAX, max: 0, sumsq: 0 },
            next: NULL_INDEX,
        }
    }
}

/// One cache-line aggregate chain node (header and overflow share the
/// layout; the header's latch guards its whole chain).
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct AggBucket {
    /// Chain latch (meaningful on headers).
    pub latch: Latch,
    data: UnsafeCell<AggData>,
}

// SAFETY: same discipline as `Bucket` — mutation only under the header
// latch, traversal in read-only phases, nodes arena-owned by the table.
unsafe impl Send for AggBucket {}
unsafe impl Sync for AggBucket {}

impl AggBucket {
    /// Read the node payload.
    ///
    /// # Safety
    /// No concurrent mutation (read-only phase or latch held).
    #[inline(always)]
    pub unsafe fn data(&self) -> &AggData {
        &*self.data.get()
    }

    /// Mutate the node payload.
    ///
    /// # Safety
    /// Caller holds the governing header latch (or exclusive table access).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut AggData {
        &mut *self.data.get()
    }

    /// Atomic view of the chain link (the field latch-free merges CAS to
    /// publish fresh group nodes; see [`AggTable::merge_latchfree`]).
    #[inline(always)]
    pub fn next_atomic(&self) -> &AtomicU32 {
        // SAFETY: `next` is a 4-aligned u32 inside the UnsafeCell.
        unsafe { AtomicU32::from_ptr(addr_of_mut!((*self.data.get()).next)) }
    }

    /// Atomic view of the group key (immutable once its `count` is
    /// nonzero, but read concurrently with other fields' writes).
    #[inline(always)]
    pub fn key_atomic(&self) -> &AtomicU64 {
        // SAFETY: 8-aligned u64 inside the UnsafeCell.
        unsafe { AtomicU64::from_ptr(addr_of_mut!((*self.data.get()).key)) }
    }

    /// Atomic views of the five stored aggregates, in
    /// (count, sum, min, max, sumsq) order. count/sum/sumsq merge with
    /// `fetch_add`, min/max with `fetch_min`/`fetch_max` — all
    /// commutative, so any interleaving folds identically.
    #[inline(always)]
    pub fn aggs_atomic(&self) -> [&AtomicU64; 5] {
        // SAFETY: AggValues fields are 8-aligned u64s in the UnsafeCell.
        unsafe {
            let a = addr_of_mut!((*self.data.get()).aggs);
            [
                AtomicU64::from_ptr(addr_of_mut!((*a).count)),
                AtomicU64::from_ptr(addr_of_mut!((*a).sum)),
                AtomicU64::from_ptr(addr_of_mut!((*a).min)),
                AtomicU64::from_ptr(addr_of_mut!((*a).max)),
                AtomicU64::from_ptr(addr_of_mut!((*a).sumsq)),
            ]
        }
    }
}

/// The group-by hash table: one aggregate node per distinct key.
pub struct AggTable {
    buckets: amac_mem::align::AlignedBox<AggBucket>,
    mask: u64,
    /// Overflow group nodes, shared by every handle and addressed by the
    /// `u32` chain indices stored in [`AggData::next`].
    nodes: IndexedArena<AggBucket>,
    /// Frozen boundary for the latch-free merge epoch (same discipline as
    /// `HashTable::freeze`): nodes `< frozen` plus occupied headers are
    /// immutable structure; nodes `>= frozen` are epoch-created groups.
    frozen: AtomicU32,
}

impl AggTable {
    /// Create a table with at least `n_buckets` buckets (power of two).
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        AggTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            nodes: IndexedArena::new(),
            frozen: AtomicU32::new(u32::MAX),
        }
    }

    /// Size for `n_groups` distinct keys (one header per expected group).
    pub fn for_groups(n_groups: usize) -> Self {
        Self::with_buckets(n_groups.max(1))
    }

    /// Bucket mask.
    #[inline(always)]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of bucket headers.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Address of `key`'s bucket header (for prefetching in stage 0).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const AggBucket {
        // SAFETY: index < len by mask.
        unsafe { self.buckets.as_ptr().add(bucket_of(key, self.mask) as usize) }
    }

    /// Resolve a chain index to the overflow node's stable address (the
    /// per-hop address computation before the prefetch).
    #[inline(always)]
    pub fn node_ptr(&self, idx: u32) -> *const AggBucket {
        self.nodes.get(idx)
    }

    /// Open an update session (latched inserts/updates; nodes come from
    /// the table's shared indexed arena).
    pub fn handle(&self) -> AggHandle<'_> {
        AggHandle { table: self }
    }

    /// Read a group's aggregates (read-only phase).
    pub fn get(&self, key: u64) -> Option<AggValues> {
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: read-only phase.
            let d = unsafe { (*node).data() };
            if d.aggs.count > 0 && d.key == key {
                return Some(d.aggs);
            }
            if d.next == NULL_INDEX {
                return None;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Snapshot every group (read-only phase; test/validation use).
    pub fn groups(&self) -> Vec<(u64, AggValues)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut node: *const AggBucket = b;
            loop {
                // SAFETY: read-only phase.
                let d = unsafe { (*node).data() };
                if d.aggs.count > 0 {
                    out.push((d.key, d.aggs));
                }
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        out
    }

    /// Number of distinct groups stored.
    pub fn group_count(&self) -> usize {
        self.groups().len()
    }

    /// Enter (or re-observe) the latch-free merge epoch; see
    /// `HashTable::freeze` for the discipline. Returns the boundary.
    pub fn freeze(&self) -> u32 {
        let len = self.nodes.len() as u32;
        match self.frozen.compare_exchange(u32::MAX, len, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => len,
            Err(cur) => cur,
        }
    }

    /// The frozen boundary ([`u32::MAX`] before [`freeze`](AggTable::freeze)).
    #[inline(always)]
    pub fn frozen_bound(&self) -> u32 {
        self.frozen.load(Ordering::Acquire)
    }

    /// Latch-free aggregate merge: fold `payload` into `key`'s group,
    /// creating the group if absent. Returns true when a fresh group node
    /// was created.
    ///
    /// All five stored aggregates merge with commutative atomics
    /// (`fetch_add` for count/sum/sumsq, `fetch_min`/`fetch_max`), and a
    /// miss CAS-prepends a fully initialized node at the header's `next`
    /// with the same re-walk retry as `HashTable::fresh_upsert` — so any
    /// interleaving across threads or AMAC slots produces bit-identical
    /// group values. Unlike the latched path this never claims an empty
    /// header: epoch groups always live in fresh nodes (the read paths
    /// already follow `next` from empty headers).
    pub fn merge_latchfree(&self, key: u64, payload: u64) -> bool {
        let bound = self.freeze();
        let header = self.bucket_addr(key);
        // SAFETY: header/chain pointers resolve into this table; frozen
        // nodes' key/count/next are immutable during the epoch.
        unsafe {
            let hb = &*header;
            // Occupancy and key of a frozen header are immutable during
            // the epoch, but its count is concurrently folded — read it
            // through the atomic view.
            if hb.aggs_atomic()[0].load(Ordering::Acquire) > 0
                && hb.key_atomic().load(Ordering::Acquire) == key
            {
                Self::fold_atomic(hb, payload);
                return false;
            }
            // Walk the frozen chain tail (fresh prefix handled below).
            let head = hb.next_atomic().load(Ordering::Acquire);
            let mut idx = head;
            while idx != NULL_INDEX && idx >= bound {
                idx = (*self.node_ptr(idx)).next_atomic().load(Ordering::Acquire);
            }
            while idx != NULL_INDEX {
                let b = &*self.node_ptr(idx);
                if b.key_atomic().load(Ordering::Acquire) == key {
                    Self::fold_atomic(b, payload);
                    return false;
                }
                idx = b.next_atomic().load(Ordering::Acquire);
            }
        }
        // No frozen group: merge into (or create) the fresh prefix node.
        let mut fresh: Option<(u32, *mut AggBucket)> = None;
        loop {
            // SAFETY: as above; published fresh nodes are initialized.
            let head = unsafe { &*header }.next_atomic().load(Ordering::Acquire);
            let mut idx = head;
            while idx != NULL_INDEX && idx >= bound {
                let b = unsafe { &*self.node_ptr(idx) };
                if b.key_atomic().load(Ordering::Acquire) == key {
                    Self::fold_atomic(b, payload);
                    return false;
                }
                idx = b.next_atomic().load(Ordering::Acquire);
            }
            let (nidx, nptr) = *fresh.get_or_insert_with(|| self.nodes.alloc());
            // SAFETY: unpublished node owned by this thread.
            unsafe {
                let d = (*nptr).data_mut();
                d.key = key;
                d.aggs = AggValues::first(payload);
                d.next = head;
            }
            if unsafe { &*header }
                .next_atomic()
                .compare_exchange(head, nidx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Fold `payload` into an existing group with commutative atomics.
    fn fold_atomic(node: &AggBucket, payload: u64) {
        let [count, sum, min, max, sumsq] = node.aggs_atomic();
        count.fetch_add(1, Ordering::AcqRel);
        sum.fetch_add(payload, Ordering::AcqRel);
        min.fetch_min(payload, Ordering::AcqRel);
        max.fetch_max(payload, Ordering::AcqRel);
        sumsq.fetch_add(payload.wrapping_mul(payload), Ordering::AcqRel);
    }
}

// SAFETY: as for HashTable.
unsafe impl Send for AggTable {}
unsafe impl Sync for AggTable {}

/// An update session against a shared [`AggTable`].
pub struct AggHandle<'t> {
    table: &'t AggTable,
}

impl AggHandle<'_> {
    /// The table this handle updates.
    #[inline]
    pub fn table(&self) -> &AggTable {
        self.table
    }

    /// Allocate a fresh chain node, returning its index and address.
    #[inline]
    pub fn alloc_node(&mut self) -> (u32, *mut AggBucket) {
        self.table.nodes.alloc()
    }

    /// Aggregate `(key, payload)`, spinning on the header latch (the
    /// baseline/GP/SPP discipline). Creates the group on first sight.
    pub fn update(&mut self, key: u64, payload: u64) {
        let header = self.table.bucket_addr(key);
        // SAFETY: valid header; mutation under its latch.
        unsafe {
            (*header).latch.acquire();
            self.update_latched(header, key, payload);
            (*header).latch.release();
        }
    }

    /// Aggregate under an **already-held** header latch (AMAC stage code).
    ///
    /// Walks the chain: updates the matching group, claims an empty
    /// header, or appends a new node at the chain tail.
    ///
    /// # Safety
    /// `header` must be a header of this handle's table; the calling
    /// thread must hold its latch.
    pub unsafe fn update_latched(&mut self, header: *const AggBucket, key: u64, payload: u64) {
        let mut node = header;
        loop {
            let d = (*node).data_mut();
            if d.aggs.count == 0 {
                // Unoccupied header: claim it.
                d.key = key;
                d.aggs = AggValues::first(payload);
                return;
            }
            if d.key == key {
                d.aggs.update(payload);
                return;
            }
            if d.next == NULL_INDEX {
                let (idx, fresh) = self.alloc_node();
                let fd = (*fresh).data_mut();
                fd.key = key;
                fd.aggs = AggValues::first(payload);
                d.next = idx;
                return;
            }
            node = self.table.node_ptr(d.next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<AggBucket>(), 64);
        assert_eq!(core::mem::align_of::<AggBucket>(), 64);
    }

    #[test]
    fn aggregates_fold_correctly() {
        let mut a = AggValues::first(10);
        a.update(4);
        a.update(7);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 21);
        assert_eq!(a.min, 4);
        assert_eq!(a.max, 10);
        assert_eq!(a.sumsq, 100 + 16 + 49);
        assert!((a.avg() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn update_and_get_single_group() {
        let t = AggTable::for_groups(16);
        {
            let mut h = t.handle();
            h.update(5, 100);
            h.update(5, 50);
        }
        let a = t.get(5).expect("group exists");
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 150);
        assert_eq!(t.get(6), None);
    }

    #[test]
    fn matches_hashmap_model() {
        use std::collections::HashMap;
        let t = AggTable::for_groups(64);
        let mut model: HashMap<u64, AggValues> = HashMap::new();
        {
            let mut h = t.handle();
            let mut rng = 0xDEAD_u64;
            for i in 0..50_000u64 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = rng % 500;
                let payload = i ^ 0x5A5A;
                h.update(key, payload);
                model
                    .entry(key)
                    .and_modify(|a| a.update(payload))
                    .or_insert_with(|| AggValues::first(payload));
            }
        }
        assert_eq!(t.group_count(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(*k).as_ref(), Some(v), "group {k}");
        }
    }

    #[test]
    fn forced_collisions_chain_distinct_groups() {
        let t = AggTable::with_buckets(1); // everything collides
        {
            let mut h = t.handle();
            for k in 0..100u64 {
                h.update(k, k * 2);
            }
        }
        assert_eq!(t.group_count(), 100);
        for k in 0..100u64 {
            assert_eq!(t.get(k).unwrap().sum, k * 2);
        }
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let t = AggTable::for_groups(8);
        const THREADS: u64 = 4;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let t = &t;
                s.spawn(move || {
                    let mut h = t.handle();
                    for i in 0..PER {
                        h.update(i % 10, 1);
                    }
                });
            }
        });
        for k in 0..10u64 {
            let a = t.get(k).unwrap();
            assert_eq!(a.count, THREADS * PER / 10, "group {k}");
            assert_eq!(a.sum, THREADS * PER / 10);
            assert_eq!(a.min, 1);
            assert_eq!(a.max, 1);
        }
    }

    #[test]
    fn latchfree_merge_matches_latched_reference() {
        // Same updates through the latched handle and the latch-free
        // path: all six aggregates must agree bit-for-bit.
        let latched = AggTable::for_groups(16);
        let free = AggTable::for_groups(16);
        {
            // Pre-populate both with a latched build phase, then freeze.
            let mut h = latched.handle();
            let mut h2 = free.handle();
            for k in 0..20u64 {
                h.update(k, k * 7);
                h2.update(k, k * 7);
            }
        }
        free.freeze();
        for i in 0..5_000u64 {
            let (k, p) = (i % 40, i.wrapping_mul(31) % 1000);
            let mut h = latched.handle();
            h.update(k, p);
            let created = free.merge_latchfree(k, p);
            assert_eq!(created, latched.get(k).unwrap().count == 1 && k >= 20 && i % 40 == i);
        }
        assert_eq!(latched.group_count(), free.group_count());
        for (k, a) in latched.groups() {
            assert_eq!(free.get(k), Some(a), "group {k}");
        }
    }

    #[test]
    fn concurrent_latchfree_merges_are_exact() {
        // The order-independence claim under real parallelism: any
        // interleaving of commutative atomic folds produces the same
        // groups as a serial reference.
        let t = AggTable::for_groups(8);
        {
            let mut h = t.handle();
            for k in 0..5u64 {
                h.update(k, 500 + k);
            }
        }
        t.freeze();
        const THREADS: u64 = 4;
        const PER: u64 = 8_000;
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let t = &t;
                s.spawn(move || {
                    for i in 0..PER {
                        t.merge_latchfree(i % 10, tid * PER + i);
                    }
                });
            }
        });
        let mut reference = AggTable::for_groups(8);
        {
            let mut h = reference.handle();
            for k in 0..5u64 {
                h.update(k, 500 + k);
            }
            for tid in 0..THREADS {
                for i in 0..PER {
                    h.update(i % 10, tid * PER + i);
                }
            }
        }
        let _ = &mut reference;
        assert_eq!(t.group_count(), 10);
        for k in 0..10u64 {
            assert_eq!(t.get(k), reference.get(k), "group {k}");
        }
    }

    #[test]
    fn groups_snapshot_is_complete() {
        let t = AggTable::for_groups(32);
        {
            let mut h = t.handle();
            for k in 1..=77u64 {
                h.update(k, k);
            }
        }
        let mut gs = t.groups();
        gs.sort_by_key(|(k, _)| *k);
        assert_eq!(gs.len(), 77);
        assert_eq!(gs[0].0, 1);
        assert_eq!(gs[76].0, 77);
    }
}
