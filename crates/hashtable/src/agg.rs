//! The group-by aggregate table.
//!
//! "For the group-by workload, we extend the hash table used in hash join
//! with an additional aggregation field" (§4). We give each distinct key
//! one chain node carrying the paper's six aggregates — count, sum, min,
//! max, sum-of-squares stored, average derived from sum/count at read time
//! — which keeps a node (plus latch and next pointer) exactly one cache
//! line.
//!
//! All aggregates are order-independent (count/min/max, wrapping
//! sum/sumsq), so any interleaving of updates — across AMAC slots,
//! morsels, or threads — produces bit-identical tables; the fused
//! pipeline equivalence tests rely on this.

use amac_mem::arena::IndexedArena;
use amac_mem::hash::{bucket_of, next_pow2};
use amac_mem::latch::Latch;
use amac_mem::NULL_INDEX;
use core::cell::UnsafeCell;

/// Aggregates maintained per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggValues {
    /// Number of aggregated payloads.
    pub count: u64,
    /// Sum of payloads (wrapping).
    pub sum: u64,
    /// Minimum payload.
    pub min: u64,
    /// Maximum payload.
    pub max: u64,
    /// Sum of squared payloads (wrapping).
    pub sumsq: u64,
}

impl AggValues {
    /// Initial aggregates for a group's first payload.
    #[inline(always)]
    pub fn first(payload: u64) -> Self {
        AggValues {
            count: 1,
            sum: payload,
            min: payload,
            max: payload,
            sumsq: payload.wrapping_mul(payload),
        }
    }

    /// Fold one more payload in (the paper's per-match aggregate update).
    #[inline(always)]
    pub fn update(&mut self, payload: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(payload);
        self.min = self.min.min(payload);
        self.max = self.max.max(payload);
        self.sumsq = self.sumsq.wrapping_add(payload.wrapping_mul(payload));
    }

    /// The sixth aggregate: average, derived from sum and count.
    #[inline]
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Mutable interior of an aggregate node.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct AggData {
    /// The group key (valid when `count > 0`).
    pub key: u64,
    /// The running aggregates; `count == 0` marks an unoccupied header.
    pub aggs: AggValues,
    /// Arena index of the next chain node, or [`NULL_INDEX`]. The `u32`
    /// link (vs the seed's 8-byte pointer) keeps the node at 56 payload
    /// bytes — same one-line budget as the probe-table node.
    pub next: u32,
}

impl Default for AggData {
    fn default() -> Self {
        AggData {
            key: 0,
            aggs: AggValues { count: 0, sum: 0, min: u64::MAX, max: 0, sumsq: 0 },
            next: NULL_INDEX,
        }
    }
}

/// One cache-line aggregate chain node (header and overflow share the
/// layout; the header's latch guards its whole chain).
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct AggBucket {
    /// Chain latch (meaningful on headers).
    pub latch: Latch,
    data: UnsafeCell<AggData>,
}

// SAFETY: same discipline as `Bucket` — mutation only under the header
// latch, traversal in read-only phases, nodes arena-owned by the table.
unsafe impl Send for AggBucket {}
unsafe impl Sync for AggBucket {}

impl AggBucket {
    /// Read the node payload.
    ///
    /// # Safety
    /// No concurrent mutation (read-only phase or latch held).
    #[inline(always)]
    pub unsafe fn data(&self) -> &AggData {
        &*self.data.get()
    }

    /// Mutate the node payload.
    ///
    /// # Safety
    /// Caller holds the governing header latch (or exclusive table access).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut AggData {
        &mut *self.data.get()
    }
}

/// The group-by hash table: one aggregate node per distinct key.
pub struct AggTable {
    buckets: amac_mem::align::AlignedBox<AggBucket>,
    mask: u64,
    /// Overflow group nodes, shared by every handle and addressed by the
    /// `u32` chain indices stored in [`AggData::next`].
    nodes: IndexedArena<AggBucket>,
}

impl AggTable {
    /// Create a table with at least `n_buckets` buckets (power of two).
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        AggTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            nodes: IndexedArena::new(),
        }
    }

    /// Size for `n_groups` distinct keys (one header per expected group).
    pub fn for_groups(n_groups: usize) -> Self {
        Self::with_buckets(n_groups.max(1))
    }

    /// Bucket mask.
    #[inline(always)]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of bucket headers.
    #[inline(always)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Address of `key`'s bucket header (for prefetching in stage 0).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const AggBucket {
        // SAFETY: index < len by mask.
        unsafe { self.buckets.as_ptr().add(bucket_of(key, self.mask) as usize) }
    }

    /// Resolve a chain index to the overflow node's stable address (the
    /// per-hop address computation before the prefetch).
    #[inline(always)]
    pub fn node_ptr(&self, idx: u32) -> *const AggBucket {
        self.nodes.get(idx)
    }

    /// Open an update session (latched inserts/updates; nodes come from
    /// the table's shared indexed arena).
    pub fn handle(&self) -> AggHandle<'_> {
        AggHandle { table: self }
    }

    /// Read a group's aggregates (read-only phase).
    pub fn get(&self, key: u64) -> Option<AggValues> {
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: read-only phase.
            let d = unsafe { (*node).data() };
            if d.aggs.count > 0 && d.key == key {
                return Some(d.aggs);
            }
            if d.next == NULL_INDEX {
                return None;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Snapshot every group (read-only phase; test/validation use).
    pub fn groups(&self) -> Vec<(u64, AggValues)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut node: *const AggBucket = b;
            loop {
                // SAFETY: read-only phase.
                let d = unsafe { (*node).data() };
                if d.aggs.count > 0 {
                    out.push((d.key, d.aggs));
                }
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        out
    }

    /// Number of distinct groups stored.
    pub fn group_count(&self) -> usize {
        self.groups().len()
    }
}

// SAFETY: as for HashTable.
unsafe impl Send for AggTable {}
unsafe impl Sync for AggTable {}

/// An update session against a shared [`AggTable`].
pub struct AggHandle<'t> {
    table: &'t AggTable,
}

impl AggHandle<'_> {
    /// The table this handle updates.
    #[inline]
    pub fn table(&self) -> &AggTable {
        self.table
    }

    /// Allocate a fresh chain node, returning its index and address.
    #[inline]
    pub fn alloc_node(&mut self) -> (u32, *mut AggBucket) {
        self.table.nodes.alloc()
    }

    /// Aggregate `(key, payload)`, spinning on the header latch (the
    /// baseline/GP/SPP discipline). Creates the group on first sight.
    pub fn update(&mut self, key: u64, payload: u64) {
        let header = self.table.bucket_addr(key);
        // SAFETY: valid header; mutation under its latch.
        unsafe {
            (*header).latch.acquire();
            self.update_latched(header, key, payload);
            (*header).latch.release();
        }
    }

    /// Aggregate under an **already-held** header latch (AMAC stage code).
    ///
    /// Walks the chain: updates the matching group, claims an empty
    /// header, or appends a new node at the chain tail.
    ///
    /// # Safety
    /// `header` must be a header of this handle's table; the calling
    /// thread must hold its latch.
    pub unsafe fn update_latched(&mut self, header: *const AggBucket, key: u64, payload: u64) {
        let mut node = header;
        loop {
            let d = (*node).data_mut();
            if d.aggs.count == 0 {
                // Unoccupied header: claim it.
                d.key = key;
                d.aggs = AggValues::first(payload);
                return;
            }
            if d.key == key {
                d.aggs.update(payload);
                return;
            }
            if d.next == NULL_INDEX {
                let (idx, fresh) = self.alloc_node();
                let fd = (*fresh).data_mut();
                fd.key = key;
                fd.aggs = AggValues::first(payload);
                d.next = idx;
                return;
            }
            node = self.table.node_ptr(d.next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<AggBucket>(), 64);
        assert_eq!(core::mem::align_of::<AggBucket>(), 64);
    }

    #[test]
    fn aggregates_fold_correctly() {
        let mut a = AggValues::first(10);
        a.update(4);
        a.update(7);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 21);
        assert_eq!(a.min, 4);
        assert_eq!(a.max, 10);
        assert_eq!(a.sumsq, 100 + 16 + 49);
        assert!((a.avg() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn update_and_get_single_group() {
        let t = AggTable::for_groups(16);
        {
            let mut h = t.handle();
            h.update(5, 100);
            h.update(5, 50);
        }
        let a = t.get(5).expect("group exists");
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 150);
        assert_eq!(t.get(6), None);
    }

    #[test]
    fn matches_hashmap_model() {
        use std::collections::HashMap;
        let t = AggTable::for_groups(64);
        let mut model: HashMap<u64, AggValues> = HashMap::new();
        {
            let mut h = t.handle();
            let mut rng = 0xDEAD_u64;
            for i in 0..50_000u64 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = rng % 500;
                let payload = i ^ 0x5A5A;
                h.update(key, payload);
                model
                    .entry(key)
                    .and_modify(|a| a.update(payload))
                    .or_insert_with(|| AggValues::first(payload));
            }
        }
        assert_eq!(t.group_count(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(*k).as_ref(), Some(v), "group {k}");
        }
    }

    #[test]
    fn forced_collisions_chain_distinct_groups() {
        let t = AggTable::with_buckets(1); // everything collides
        {
            let mut h = t.handle();
            for k in 0..100u64 {
                h.update(k, k * 2);
            }
        }
        assert_eq!(t.group_count(), 100);
        for k in 0..100u64 {
            assert_eq!(t.get(k).unwrap().sum, k * 2);
        }
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let t = AggTable::for_groups(8);
        const THREADS: u64 = 4;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let t = &t;
                s.spawn(move || {
                    let mut h = t.handle();
                    for i in 0..PER {
                        h.update(i % 10, 1);
                    }
                });
            }
        });
        for k in 0..10u64 {
            let a = t.get(k).unwrap();
            assert_eq!(a.count, THREADS * PER / 10, "group {k}");
            assert_eq!(a.sum, THREADS * PER / 10);
            assert_eq!(a.min, 1);
            assert_eq!(a.max, 1);
        }
    }

    #[test]
    fn groups_snapshot_is_complete() {
        let t = AggTable::for_groups(32);
        {
            let mut h = t.handle();
            for k in 1..=77u64 {
                h.update(k, k);
            }
        }
        let mut gs = t.groups();
        gs.sort_by_key(|(k, _)| *k);
        assert_eq!(gs.len(), 77);
        assert_eq!(gs[0].0, 1);
        assert_eq!(gs[76].0, 77);
    }
}
