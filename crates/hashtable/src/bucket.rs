//! The 64-byte bucket / chain-node layout.

use amac_mem::latch::Latch;
use amac_workload::Tuple;
use core::cell::UnsafeCell;

/// Tuples stored inline per chain node (bucket header or overflow node).
pub const TUPLES_PER_NODE: usize = 2;

/// Mutable interior of a bucket: fill count, inline tuples, chain pointer.
///
/// `repr(C)` keeps the layout equal to the paper's C struct: 1-byte count
/// (padded), 2 × 16-byte tuples, 8-byte next pointer — 48 bytes, leaving
/// the latch and padding to reach one cache line.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct BucketData {
    /// Number of occupied tuple slots in this node (0..=2).
    pub count: u8,
    /// Inline tuple storage; slots `0..count` are valid.
    pub tuples: [Tuple; TUPLES_PER_NODE],
    /// Next chain node, or null.
    pub next: *mut Bucket,
}

impl Default for BucketData {
    fn default() -> Self {
        BucketData {
            count: 0,
            tuples: [Tuple::default(); TUPLES_PER_NODE],
            next: core::ptr::null_mut(),
        }
    }
}

/// One cache-line-aligned hash-table chain node (bucket header and
/// overflow node share this layout, per the paper's Fig. 1).
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct Bucket {
    /// 1-byte test-and-set latch guarding this bucket's whole chain
    /// (meaningful on bucket headers; unused on overflow nodes).
    pub latch: Latch,
    data: UnsafeCell<BucketData>,
}

// SAFETY: all mutation of `data` is performed while holding `latch` (build
// phases); traversal without the latch only happens in read-only phases.
// The raw `next` pointers always point into arenas owned by (or donated to)
// the same table, so they remain valid as long as any reference exists.
unsafe impl Send for Bucket {}
unsafe impl Sync for Bucket {}

impl Bucket {
    /// Read access to the node payload.
    ///
    /// # Safety
    /// No thread may be concurrently mutating this node (i.e. the table is
    /// in a read-only phase, or the caller holds the governing latch).
    #[inline(always)]
    pub unsafe fn data(&self) -> &BucketData {
        &*self.data.get()
    }

    /// Mutable access to the node payload.
    ///
    /// # Safety
    /// The caller must hold the governing bucket latch (or have exclusive
    /// access to the table).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut BucketData {
        &mut *self.data.get()
    }

    /// Raw pointer to the payload, for prefetch address computation.
    #[inline(always)]
    pub fn data_ptr(&self) -> *const BucketData {
        self.data.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<Bucket>(), 64);
        assert_eq!(core::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn bucket_data_layout_matches_paper() {
        // 1B count (+7 pad) + 32B tuples + 8B next = 48.
        assert_eq!(core::mem::size_of::<BucketData>(), 48);
    }

    #[test]
    fn default_bucket_is_empty() {
        let b = Bucket::default();
        let d = unsafe { b.data() };
        assert_eq!(d.count, 0);
        assert!(d.next.is_null());
    }

    #[test]
    fn data_mut_roundtrip() {
        let b = Bucket::default();
        unsafe {
            let d = b.data_mut();
            d.count = 1;
            d.tuples[0] = Tuple::new(42, 99);
        }
        let d = unsafe { b.data() };
        assert_eq!(d.count, 1);
        assert_eq!(d.tuples[0], Tuple::new(42, 99));
    }
}
