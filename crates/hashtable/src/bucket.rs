//! The 64-byte tag-probed chain-node layout.
//!
//! The seed reproduction used the paper's literal C struct: 1-byte count
//! (padded to 8), two 16-byte tuples and an 8-byte `next` pointer — 48
//! payload bytes, 2 tuples per cache line. At the paper's fill factors
//! that layout pays one chain hop per two tuples, and in AMAC every hop is
//! a full stage: one more prefetch, one more window rotation, one more
//! dependent cache-line access. This module re-spends the line's budget:
//!
//! * the 8-byte `next` pointer becomes a **`u32` index** into the table's
//!   [`IndexedArena`](amac_mem::arena::IndexedArena) (4 bytes reclaimed);
//! * count and padding collapse into one packed [`meta`](BucketData::meta)
//!   word that also carries an 8-bit splitmix-derived **fingerprint per
//!   slot** (tags);
//! * the reclaimed bytes raise inline capacity from 2 to **3 tuples per
//!   node** — expected hops per probe drop by ~1/3 at equal fill factor.
//!
//! The tags pay a second dividend: a probe compares its key's fingerprint
//! against all three slots **branch-free** — one XOR against the packed
//! meta word plus a SWAR zero-byte test ([`tags_may_match`]) — and only
//! touches the 16-byte tuple slots when some tag matches. A chain node
//! that holds no match is usually rejected from its first 4 bytes.
//!
//! The legacy 2-tuple pointer-linked layout survives as
//! [`crate::legacy::LegacyBucket`] so the layout A/B (`bench/bin/layout`)
//! can measure exactly what this redesign buys.

use amac_mem::latch::Latch;
use amac_mem::NULL_INDEX;
use amac_workload::Tuple;
use core::cell::UnsafeCell;
use core::ptr::addr_of_mut;
use core::sync::atomic::{AtomicU32, AtomicU64};

/// Tuples stored inline per chain node (bucket header or overflow node).
pub const TUPLES_PER_NODE: usize = 3;

/// Build the packed probe word for fingerprint `fp`: the fingerprint
/// broadcast into the three tag lanes, with lane 3 poisoned (`0xFF`) so
/// the count byte of [`BucketData::meta`] can never fake a match.
#[inline(always)]
pub fn probe_word(fp: u8) -> u32 {
    u32::from_le_bytes([fp, fp, fp, 0xFF])
}

/// Branch-free tag filter: true iff some **occupied** slot's tag equals
/// the probed fingerprint.
///
/// `meta` packs three tag bytes plus the count byte; `probe` comes from
/// [`probe_word`]. XOR zeroes exactly the lanes whose tag equals the
/// fingerprint, and the Mycroft zero-byte test detects any zero lane with
/// three ALU ops. No false negatives (an equal tag always yields a zero
/// lane) and no spurious lanes: empty slots hold tag 0 while real
/// fingerprints have the high bit set ([`amac_mem::hash::tag_of`]), and
/// the count lane is poisoned by `probe_word`, so neither can go to zero.
#[inline(always)]
pub fn tags_may_match(meta: u32, probe: u32) -> bool {
    let x = meta ^ probe;
    (x.wrapping_sub(0x0101_0101) & !x & 0x8080_8080) != 0
}

/// Mutable interior of a chain node: 3 inline tuples, `u32` chain link,
/// packed tags + count.
///
/// `repr(C)` keeps the layout exact: 48 B tuples + 4 B next + 4 B meta =
/// 56 B, leaving the latch and padding to reach one cache line.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct BucketData {
    /// Inline tuple storage; slots `0..count()` are valid.
    pub tuples: [Tuple; TUPLES_PER_NODE],
    /// Arena index of the next chain node, or [`NULL_INDEX`].
    pub next: u32,
    /// Packed metadata: bytes 0..=2 hold the per-slot fingerprints (0 =
    /// empty slot), byte 3 holds the occupied-slot count. One u32 load
    /// feeds both the SWAR tag test and the scan bound.
    pub meta: u32,
}

impl BucketData {
    /// Number of occupied tuple slots in this node (0..=3).
    #[inline(always)]
    pub fn count(&self) -> usize {
        (self.meta >> 24) as usize
    }

    /// Fingerprint stored for slot `i` (0 when the slot is empty).
    #[inline(always)]
    pub fn tag(&self, i: usize) -> u8 {
        debug_assert!(i < TUPLES_PER_NODE);
        (self.meta >> (8 * i)) as u8
    }

    /// Append `tuple` with fingerprint `tag` to the next free slot.
    /// Caller guarantees `count() < TUPLES_PER_NODE`.
    #[inline(always)]
    pub fn push(&mut self, tuple: Tuple, tag: u8) {
        let c = self.count();
        debug_assert!(c < TUPLES_PER_NODE, "node full");
        self.tuples[c] = tuple;
        self.meta = (self.meta | ((tag as u32) << (8 * c))).wrapping_add(1 << 24);
    }
}

impl Default for BucketData {
    fn default() -> Self {
        BucketData { tuples: [Tuple::default(); TUPLES_PER_NODE], next: NULL_INDEX, meta: 0 }
    }
}

/// One cache-line-aligned hash-table chain node (bucket header and
/// overflow node share this layout, as in the paper's Fig. 1).
#[repr(C, align(64))]
#[derive(Debug, Default)]
pub struct Bucket {
    /// 1-byte test-and-set latch guarding this bucket's whole chain
    /// (meaningful on bucket headers; unused on overflow nodes).
    pub latch: Latch,
    data: UnsafeCell<BucketData>,
}

// SAFETY: all mutation of `data` is performed while holding `latch` (build
// phases); traversal without the latch only happens in read-only phases.
// The `next` indices always resolve through the arena owned by the same
// table, so they remain valid as long as any reference exists.
unsafe impl Send for Bucket {}
unsafe impl Sync for Bucket {}

impl Bucket {
    /// Read access to the node payload.
    ///
    /// # Safety
    /// No thread may be concurrently mutating this node (i.e. the table is
    /// in a read-only phase, or the caller holds the governing latch).
    #[inline(always)]
    pub unsafe fn data(&self) -> &BucketData {
        &*self.data.get()
    }

    /// Mutable access to the node payload.
    ///
    /// # Safety
    /// The caller must hold the governing bucket latch (or have exclusive
    /// access to the table).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut BucketData {
        &mut *self.data.get()
    }

    /// Raw pointer to the payload, for prefetch address computation.
    #[inline(always)]
    pub fn data_ptr(&self) -> *const BucketData {
        self.data.get()
    }

    /// Atomic view of this node's chain link — the only field the
    /// latch-free mutation epoch writes on *published* nodes (fresh nodes
    /// are CAS-prepended here; see `HashTable::freeze`). Plain reads of a
    /// field another thread writes atomically are a data race, so every
    /// epoch-concurrent access to `next` goes through this view.
    #[inline(always)]
    pub fn next_atomic(&self) -> &AtomicU32 {
        // SAFETY: `next` is a 4-aligned `u32` inside the node's
        // `UnsafeCell`; an atomic view over it is always valid.
        unsafe { AtomicU32::from_ptr(addr_of_mut!((*self.data.get()).next)) }
    }

    /// Atomic view of the packed tags + count word (immutable after the
    /// table freezes, but read concurrently with other fields' writes).
    #[inline(always)]
    pub fn meta_atomic(&self) -> &AtomicU32 {
        // SAFETY: as in next_atomic — `meta` is a 4-aligned u32.
        unsafe { AtomicU32::from_ptr(addr_of_mut!((*self.data.get()).meta)) }
    }

    /// Atomic view of slot `i`'s key — written by latch-free deletes
    /// (tombstone CAS to `HashTable::TOMBSTONE`).
    #[inline(always)]
    pub fn key_atomic(&self, i: usize) -> &AtomicU64 {
        debug_assert!(i < TUPLES_PER_NODE);
        // SAFETY: tuple fields are 8-aligned u64s inside the UnsafeCell.
        unsafe { AtomicU64::from_ptr(addr_of_mut!((*self.data.get()).tuples[i].key)) }
    }

    /// Atomic view of slot `i`'s payload — written by latch-free upserts
    /// (commutative `fetch_add`, so any interleaving sums identically).
    #[inline(always)]
    pub fn payload_atomic(&self, i: usize) -> &AtomicU64 {
        // SAFETY: as in key_atomic.
        debug_assert!(i < TUPLES_PER_NODE);
        unsafe { AtomicU64::from_ptr(addr_of_mut!((*self.data.get()).tuples[i].payload)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_mem::hash::tag_of;

    #[test]
    fn bucket_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<Bucket>(), 64);
        assert_eq!(core::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn bucket_data_layout_spends_the_line_on_tuples() {
        // 48 B tuples + 4 B next index + 4 B packed tags/count = 56.
        assert_eq!(core::mem::size_of::<BucketData>(), 56);
        assert_eq!(TUPLES_PER_NODE, 3);
    }

    #[test]
    fn default_bucket_is_empty() {
        let b = Bucket::default();
        let d = unsafe { b.data() };
        assert_eq!(d.count(), 0);
        assert_eq!(d.next, NULL_INDEX);
        assert_eq!(d.meta, 0);
    }

    #[test]
    fn push_tracks_count_and_tags() {
        let b = Bucket::default();
        let d = unsafe { b.data_mut() };
        for (i, key) in [42u64, 7, 99].into_iter().enumerate() {
            d.push(Tuple::new(key, key * 2), tag_of(key));
            assert_eq!(d.count(), i + 1);
            assert_eq!(d.tag(i), tag_of(key));
            assert_eq!(d.tuples[i], Tuple::new(key, key * 2));
        }
    }

    #[test]
    fn swar_filter_has_no_false_negatives() {
        let mut d = BucketData::default();
        for key in [3u64, 1_000_003, 77] {
            d.push(Tuple::new(key, 0), tag_of(key));
        }
        for key in [3u64, 1_000_003, 77] {
            assert!(
                tags_may_match(d.meta, probe_word(tag_of(key))),
                "stored key {key} must pass its own tag filter"
            );
        }
    }

    #[test]
    fn swar_filter_rejects_empty_and_poisoned_lanes() {
        // Empty node: every lane is 0, every real fingerprint has the high
        // bit set, and the count lane is poisoned — nothing may match.
        let empty = BucketData::default();
        for key in 0..1000u64 {
            assert!(!tags_may_match(empty.meta, probe_word(tag_of(key))));
        }
        // Partially filled node with maximum count: the count byte (3)
        // must never fake a tag match either.
        let mut d = BucketData::default();
        for key in [1u64, 2, 3] {
            d.push(Tuple::new(key, 0), tag_of(key));
        }
        assert_eq!(d.meta >> 24, 3);
        for fp in 0u8..=255 {
            let stored = [d.tag(0), d.tag(1), d.tag(2)];
            let expect = stored.contains(&fp);
            assert_eq!(
                tags_may_match(d.meta, probe_word(fp)),
                expect,
                "fp {fp:#x} vs stored {stored:x?}"
            );
        }
    }

    #[test]
    fn swar_filter_reject_rate_is_low() {
        // The 7-bit fingerprint keeps accidental tag collisions ~1/128 per
        // occupied slot; with 3 slots a foreign probe should pass the
        // filter well under 5% of the time.
        let mut d = BucketData::default();
        for key in [11u64, 222, 3333] {
            d.push(Tuple::new(key, 0), tag_of(key));
        }
        let trials = 100_000u64;
        let mut passes = 0u64;
        for key in 10_000..10_000 + trials {
            if tags_may_match(d.meta, probe_word(tag_of(key))) {
                passes += 1;
            }
        }
        let rate = passes as f64 / trials as f64;
        assert!(rate < 0.05, "false-pass rate {rate:.4} too high");
    }

    #[test]
    fn data_mut_roundtrip() {
        let b = Bucket::default();
        unsafe {
            let d = b.data_mut();
            d.push(Tuple::new(42, 99), tag_of(42));
        }
        let d = unsafe { b.data() };
        assert_eq!(d.count(), 1);
        assert_eq!(d.tuples[0], Tuple::new(42, 99));
    }
}
