//! Late-aggregation group-by table.
//!
//! §2.1.1 describes two group-by strategies: "either the payloads are
//! added to a separate list pointed to by the hash table node (i.e., late
//! aggregation) or the necessary aggregation function is applied
//! immediately". [`crate::agg::AggTable`] implements the immediate form;
//! this module implements the **late** form: each group node heads a
//! chunked payload list, and aggregates are computed at read time.
//!
//! Late aggregation adds one more dependent pointer class (group node →
//! payload chunk) and a higher write volume — a heavier irregular-access
//! workload for the executors.

use amac_mem::arena::IndexedArena;
use amac_mem::hash::{bucket_of, next_pow2};
use amac_mem::latch::Latch;
use amac_mem::NULL_INDEX;
use core::cell::UnsafeCell;

/// Payloads stored inline per list chunk. The `u32` chunk link (vs the
/// seed's 8-byte pointer) buys a seventh payload slot in the same cache
/// line: 7×8 B payloads + 4 B next + 1 B count = 61 B.
pub const PAYLOADS_PER_CHUNK: usize = 7;

/// A chunk of buffered payloads.
#[repr(C, align(64))]
pub struct PayloadChunk {
    /// Payload slots; `0..count` valid.
    pub payloads: [u64; PAYLOADS_PER_CHUNK],
    /// Arena index of the older chunk (chunks are prepended), or
    /// [`NULL_INDEX`].
    pub next: u32,
    /// Occupied slots.
    pub count: u8,
}

impl Default for PayloadChunk {
    fn default() -> Self {
        PayloadChunk { payloads: [0; PAYLOADS_PER_CHUNK], next: NULL_INDEX, count: 0 }
    }
}

/// Interior of a late-aggregation group node.
#[repr(C)]
pub struct LateData {
    /// Group key (valid when `tuples > 0`).
    pub key: u64,
    /// Total payloads buffered for this group.
    pub tuples: u64,
    /// Chunk-arena index of the chunk-list head, or [`NULL_INDEX`].
    pub head: u32,
    /// Node-arena index of the next group node in this bucket's chain, or
    /// [`NULL_INDEX`].
    pub next: u32,
}

impl Default for LateData {
    fn default() -> Self {
        LateData { key: 0, tuples: 0, head: NULL_INDEX, next: NULL_INDEX }
    }
}

/// One late-aggregation chain node (header layout as the other tables:
/// latch + data in a cache line).
#[repr(C, align(64))]
#[derive(Default)]
pub struct LateBucket {
    /// Chain latch (headers only).
    pub latch: Latch,
    data: UnsafeCell<LateData>,
}

// SAFETY: identical discipline to Bucket/AggBucket — latch-guarded
// mutation, read-only phases, arena-owned nodes.
unsafe impl Send for LateBucket {}
unsafe impl Sync for LateBucket {}

impl LateBucket {
    /// Read the node payload.
    ///
    /// # Safety
    /// No concurrent mutation (read-only phase or latch held).
    #[inline(always)]
    pub unsafe fn data(&self) -> &LateData {
        &*self.data.get()
    }

    /// Mutate the node payload.
    ///
    /// # Safety
    /// Caller holds the governing header latch (or exclusive access).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn data_mut(&self) -> &mut LateData {
        &mut *self.data.get()
    }
}

/// The late-aggregation group-by table.
pub struct LateAggTable {
    buckets: amac_mem::align::AlignedBox<LateBucket>,
    mask: u64,
    /// Overflow group nodes ([`LateData::next`] indices resolve here).
    nodes: IndexedArena<LateBucket>,
    /// Payload chunks ([`LateData::head`]/[`PayloadChunk::next`] indices
    /// resolve here).
    chunks: IndexedArena<PayloadChunk>,
}

// SAFETY: as for the other tables.
unsafe impl Send for LateAggTable {}
unsafe impl Sync for LateAggTable {}

impl LateAggTable {
    /// Create a table with at least `n_buckets` buckets.
    pub fn with_buckets(n_buckets: usize) -> Self {
        let n = next_pow2(n_buckets);
        LateAggTable {
            buckets: amac_mem::align::alloc_aligned_slice(n),
            mask: (n - 1) as u64,
            nodes: IndexedArena::new(),
            chunks: IndexedArena::new(),
        }
    }

    /// Size for `n_groups` distinct keys.
    pub fn for_groups(n_groups: usize) -> Self {
        Self::with_buckets(n_groups.max(1))
    }

    /// Header address for `key` (stage-0 prefetch target).
    #[inline(always)]
    pub fn bucket_addr(&self, key: u64) -> *const LateBucket {
        // SAFETY: masked index < len.
        unsafe { self.buckets.as_ptr().add(bucket_of(key, self.mask) as usize) }
    }

    /// Resolve a group-node chain index to its stable address.
    #[inline(always)]
    pub fn node_ptr(&self, idx: u32) -> *const LateBucket {
        self.nodes.get(idx)
    }

    /// Resolve a payload-chunk index to its stable address.
    #[inline(always)]
    pub fn chunk_ptr(&self, idx: u32) -> *const PayloadChunk {
        self.chunks.get(idx)
    }

    /// Open an update session.
    pub fn handle(&self) -> LateHandle<'_> {
        LateHandle { table: self }
    }

    /// Collect a group's buffered payloads (read-only phase).
    pub fn payloads(&self, key: u64) -> Option<Vec<u64>> {
        let mut node = self.bucket_addr(key);
        loop {
            // SAFETY: read-only phase.
            let d = unsafe { (*node).data() };
            if d.tuples > 0 && d.key == key {
                let mut out = Vec::with_capacity(d.tuples as usize);
                let mut chunk = d.head;
                while chunk != NULL_INDEX {
                    let c = self.chunk_ptr(chunk);
                    // SAFETY: chunk list owned by this table's arena.
                    unsafe {
                        for i in 0..(*c).count as usize {
                            out.push((*c).payloads[i]);
                        }
                        chunk = (*c).next;
                    }
                }
                debug_assert_eq!(out.len() as u64, d.tuples);
                return Some(out);
            }
            if d.next == NULL_INDEX {
                return None;
            }
            node = self.node_ptr(d.next);
        }
    }

    /// Compute the paper's aggregates from the buffered payloads (the
    /// "late" in late aggregation).
    pub fn finalize(&self, key: u64) -> Option<crate::agg::AggValues> {
        let payloads = self.payloads(key)?;
        let mut it = payloads.iter();
        let mut acc = crate::agg::AggValues::first(*it.next()?);
        for &p in it {
            acc.update(p);
        }
        Some(acc)
    }

    /// Number of distinct groups (walks the table; validation use).
    pub fn group_count(&self) -> usize {
        let mut n = 0usize;
        for b in self.buckets.iter() {
            let mut node: *const LateBucket = b;
            loop {
                // SAFETY: read-only phase.
                let d = unsafe { (*node).data() };
                if d.tuples > 0 {
                    n += 1;
                }
                if d.next == NULL_INDEX {
                    break;
                }
                node = self.node_ptr(d.next);
            }
        }
        n
    }
}

/// Update session for [`LateAggTable`].
pub struct LateHandle<'t> {
    table: &'t LateAggTable,
}

impl LateHandle<'_> {
    /// The table this handle updates.
    #[inline]
    pub fn table(&self) -> &LateAggTable {
        self.table
    }

    /// Allocate a fresh group node, returning its index and address.
    #[inline]
    pub fn alloc_node(&mut self) -> (u32, *mut LateBucket) {
        self.table.nodes.alloc()
    }

    /// Allocate a fresh payload chunk, returning its index and address.
    #[inline]
    pub fn alloc_chunk(&mut self) -> (u32, *mut PayloadChunk) {
        self.table.chunks.alloc()
    }

    /// Buffer `(key, payload)`, spinning on the header latch.
    pub fn append(&mut self, key: u64, payload: u64) {
        let header = self.table.bucket_addr(key);
        // SAFETY: valid header; mutation under latch.
        unsafe {
            (*header).latch.acquire();
            self.append_latched(header, key, payload);
            (*header).latch.release();
        }
    }

    /// Buffer under an already-held header latch (AMAC stage code).
    ///
    /// # Safety
    /// `header` must belong to this handle's table; caller holds its latch.
    pub unsafe fn append_latched(&mut self, header: *const LateBucket, key: u64, payload: u64) {
        let mut node = header;
        loop {
            let d = (*node).data_mut();
            if d.tuples == 0 {
                // Claim the empty header.
                d.key = key;
                self.push_payload(d, payload);
                return;
            }
            if d.key == key {
                self.push_payload(d, payload);
                return;
            }
            if d.next == NULL_INDEX {
                let (idx, fresh) = self.alloc_node();
                let fd = (*fresh).data_mut();
                fd.key = key;
                self.push_payload(fd, payload);
                d.next = idx;
                return;
            }
            node = self.table.node_ptr(d.next);
        }
    }

    /// Append one payload to a group's chunk list (prepending a fresh
    /// chunk when the head is full).
    ///
    /// # Safety
    /// Caller holds the chain latch covering `d`.
    unsafe fn push_payload(&mut self, d: &mut LateData, payload: u64) {
        let head = d.head;
        if head == NULL_INDEX || (*self.table.chunk_ptr(head)).count as usize == PAYLOADS_PER_CHUNK
        {
            let (idx, fresh) = self.alloc_chunk();
            (*fresh).next = head;
            d.head = idx;
        }
        let h = self.table.chunk_ptr(d.head) as *mut PayloadChunk;
        let c = (*h).count as usize;
        (*h).payloads[c] = payload;
        (*h).count += 1;
        d.tuples += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn layouts_are_one_line() {
        assert_eq!(core::mem::size_of::<PayloadChunk>(), 64);
        assert_eq!(core::mem::size_of::<LateBucket>(), 64);
    }

    #[test]
    fn buffers_every_payload_in_insertion_order_per_chunk() {
        let t = LateAggTable::for_groups(8);
        {
            let mut h = t.handle();
            for p in 0..20u64 {
                h.append(5, p);
            }
        }
        let mut got = t.payloads(5).unwrap();
        assert_eq!(got.len(), 20);
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(t.payloads(6), None);
    }

    #[test]
    fn finalize_matches_immediate_aggregation() {
        use crate::agg::AggValues;
        let t = LateAggTable::for_groups(16);
        let mut model: HashMap<u64, AggValues> = HashMap::new();
        {
            let mut h = t.handle();
            let mut x = 0x1234u64;
            for _ in 0..5000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let k = x % 40;
                let p = x >> 32;
                h.append(k, p);
                model.entry(k).and_modify(|a| a.update(p)).or_insert_with(|| AggValues::first(p));
            }
        }
        assert_eq!(t.group_count(), model.len());
        for (k, want) in &model {
            let got = t.finalize(*k).unwrap();
            assert_eq!(got.count, want.count, "group {k}");
            assert_eq!(got.sum, want.sum, "group {k}");
            assert_eq!(got.min, want.min, "group {k}");
            assert_eq!(got.max, want.max, "group {k}");
            assert_eq!(got.sumsq, want.sumsq, "group {k}");
        }
    }

    #[test]
    fn chained_groups_in_one_bucket() {
        let t = LateAggTable::with_buckets(1);
        {
            let mut h = t.handle();
            for k in 0..50u64 {
                for p in 0..3 {
                    h.append(k, k * 100 + p);
                }
            }
        }
        assert_eq!(t.group_count(), 50);
        for k in 0..50u64 {
            assert_eq!(t.payloads(k).unwrap().len(), 3, "group {k}");
        }
    }

    #[test]
    fn concurrent_appends_lose_nothing() {
        let t = LateAggTable::for_groups(4);
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut h = t.handle();
                    for i in 0..2500u64 {
                        h.append(i % 8, tid * 10_000 + i);
                    }
                });
            }
        });
        let total: usize = (0..8u64).map(|k| t.payloads(k).unwrap().len()).sum();
        assert_eq!(total, 10_000);
    }
}
