//! Coroutine skip-list insert — the paper's most state-heavy lookup
//! (§5.4) in the §6 coroutine model.
//!
//! The insert carries a predecessor vector ("This vector occupies 0.5KB
//! per lookup and is maintained in AMAC's circular buffer for each
//! in-flight lookup", §5.4). In the coroutine formulation that vector is
//! an ordinary local array; the compiler lays it into the suspended
//! frame, which makes the §6 space-overhead discussion *measurable*:
//! [`InterleaveStats::future_bytes`](crate::InterleaveStats) reports the
//! whole frame, preds included.
//!
//! Latched splices use the same cooperative retry as the coroutine
//! group-by: a busy predecessor latch suspends the lookup for one ring
//! rotation instead of spinning.

use crate::executor::{run_interleaved, yield_now, InterleaveStats};
use amac_metrics::timer::CycleTimer;
use amac_skiplist::{
    prefetch_node, try_splice_level, InsertHandle, SkipList, SkipNode, SpliceOutcome, MAX_LEVEL,
};
use amac_workload::Relation;
use core::cell::RefCell;

/// Insert `(key, payload)` as a coroutine. Returns `true` if inserted,
/// `false` on a duplicate key.
///
/// `handle` is shared by the ring via `RefCell`; borrows are transient
/// (never held across a yield).
pub async fn skip_insert_one(handle: &RefCell<InsertHandle<'_>>, key: u64, payload: u64) -> bool {
    let (head, mut level) = {
        let h = handle.borrow();
        (h.list().head() as *mut SkipNode, h.list().level())
    };
    // The §5.4 predecessor vector — a plain local, captured across yields
    // into the compiler-generated frame.
    let mut preds: [*mut SkipNode; MAX_LEVEL + 1] = [head; MAX_LEVEL + 1];
    let mut cur = head as *const SkipNode;
    // SAFETY: traversal uses acquire loads over arena-owned nodes; splices
    // go through the latched `try_splice_level` protocol, exactly as the
    // state-machine op does.
    unsafe {
        let mut next = (*cur).next_ptr(level);
        prefetch_node(next, level);
        yield_now().await;
        // Search phase: advance / record predecessor / descend.
        loop {
            if !next.is_null() && (*next).key < key {
                cur = next;
                next = (*next).next_ptr(level);
                prefetch_node(next, level);
                yield_now().await;
                continue;
            }
            if !next.is_null() && (*next).key == key {
                return false; // duplicate
            }
            preds[level] = cur as *mut SkipNode;
            if level == 0 {
                break;
            }
            level -= 1;
            next = (*cur).next_ptr(level);
            prefetch_node(next, level);
            yield_now().await;
        }
        // Insert phase (Table 1 stage 2): random level + node allocation.
        let (top, node) = {
            let mut h = handle.borrow_mut();
            let top = h.random_level();
            (top, h.alloc_node(key, payload, top))
        };
        // Splice phase (stage 3): one latched level per turn, bottom-up.
        let mut lvl = 0usize;
        loop {
            match try_splice_level(preds[lvl], node, lvl) {
                SpliceOutcome::Spliced => {
                    if lvl == top {
                        handle.borrow().list().raise_level(top);
                        return true;
                    }
                    lvl += 1;
                    yield_now().await;
                }
                SpliceOutcome::Blocked => {
                    yield_now().await; // cooperative coarse-grained spin
                }
                SpliceOutcome::Moved(np) => {
                    preds[lvl] = np;
                    yield_now().await;
                }
                SpliceOutcome::AlreadyPresent => {
                    debug_assert_eq!(lvl, 0, "duplicate surfaced above level 0");
                    return false;
                }
            }
        }
    }
}

/// Output of a coroutine insert run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoroInsertOutput {
    /// Keys newly inserted.
    pub inserted: u64,
    /// Keys rejected as duplicates.
    pub duplicates: u64,
    /// Ring counters (note `future_bytes`: the frame carries the §5.4
    /// predecessor vector).
    pub stats: InterleaveStats,
    /// Loop cycles.
    pub cycles: u64,
    /// Loop wall time.
    pub seconds: f64,
}

/// Insert every tuple of `input` into `list` with `width` coroutines in
/// flight (tower heights drawn from `seed`).
pub fn coro_skip_insert(
    list: &SkipList,
    input: &Relation,
    width: usize,
    seed: u64,
) -> CoroInsertOutput {
    let handle = RefCell::new(list.handle(seed));
    let mut out = CoroInsertOutput::default();
    let timer = CycleTimer::start();
    let (ins, dup) = (&mut out.inserted, &mut out.duplicates);
    out.stats = run_interleaved(
        width,
        &input.tuples,
        |_, t| skip_insert_one(&handle, t.key, t.payload),
        |_, inserted| {
            if inserted {
                *ins += 1;
            } else {
                *dup += 1;
            }
        },
    );
    out.cycles = timer.cycles();
    out.seconds = timer.seconds();
    out
}

/// Multi-threaded [`coro_skip_insert`]: chunks of `input` are inserted by
/// per-thread rings into the shared list (cross-thread splice conflicts
/// yield cooperatively, intra-ring ones too).
pub fn coro_skip_insert_mt(
    list: &SkipList,
    input: &Relation,
    width: usize,
    threads: usize,
    seed: u64,
) -> CoroInsertOutput {
    let threads = threads.max(1);
    let chunk = input.len().div_ceil(threads).max(1);
    let mut total = CoroInsertOutput::default();
    let timer = CycleTimer::start();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .tuples
            .chunks(chunk)
            .enumerate()
            .map(|(tid, tuples)| {
                s.spawn(move || {
                    let handle = RefCell::new(list.handle(seed ^ (tid as u64) << 32));
                    let (mut ins, mut dup) = (0u64, 0u64);
                    let stats = run_interleaved(
                        width,
                        tuples,
                        |_, t| skip_insert_one(&handle, t.key, t.payload),
                        |_, inserted| {
                            if inserted {
                                ins += 1;
                            } else {
                                dup += 1;
                            }
                        },
                    );
                    (ins, dup, stats)
                })
            })
            .collect();
        for h in handles {
            let (ins, dup, stats) = h.join().expect("insert worker panicked");
            total.inserted += ins;
            total.duplicates += dup;
            total.stats.completed += stats.completed;
            total.stats.polls += stats.polls;
            total.stats.future_bytes = stats.future_bytes;
            total.stats.width = stats.width;
        }
    });
    total.cycles = timer.cycles();
    total.seconds = timer.seconds();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_workload::Tuple;

    #[test]
    fn builds_a_correct_list() {
        let rel = Relation::sparse_unique(5000, 61);
        let list = SkipList::new();
        let out = coro_skip_insert(&list, &rel, 10, 0xEE);
        assert_eq!(out.inserted, 5000);
        assert_eq!(out.duplicates, 0);
        assert_eq!(list.len(), 5000);
        let mut want: Vec<(u64, u64)> = rel.tuples.iter().map(|t| (t.key, t.payload)).collect();
        want.sort_unstable();
        assert_eq!(list.items(), want);
        for t in rel.tuples.iter().step_by(37) {
            assert_eq!(list.get(t.key), Some(t.payload));
        }
    }

    #[test]
    fn duplicates_are_rejected() {
        let list = SkipList::new();
        let rel = Relation::from_tuples((0..500u64).map(|k| Tuple::new(k % 100, k)).collect());
        let out = coro_skip_insert(&list, &rel, 8, 0xEF);
        assert_eq!(out.inserted, 100);
        assert_eq!(out.duplicates, 400);
        assert_eq!(list.len(), 100);
    }

    #[test]
    fn frame_carries_the_pred_vector() {
        // §5.4/§6: the suspended insert frame must include the
        // MAX_LEVEL+1 predecessor pointers (≥ 200 bytes of preds alone).
        let list = SkipList::new();
        let rel = Relation::sparse_unique(64, 63);
        let out = coro_skip_insert(&list, &rel, 4, 0xF0);
        assert!(
            out.stats.future_bytes >= (MAX_LEVEL + 1) * 8,
            "frame {} B cannot hold the predecessor vector",
            out.stats.future_bytes
        );
    }

    #[test]
    fn multithreaded_insert_is_exact() {
        let rel = Relation::sparse_unique(20_000, 67);
        let list = SkipList::new();
        let out = coro_skip_insert_mt(&list, &rel, 8, 4, 0xF1);
        assert_eq!(out.inserted, 20_000);
        assert_eq!(out.duplicates, 0);
        assert_eq!(list.len(), 20_000);
        let mut want: Vec<(u64, u64)> = rel.tuples.iter().map(|t| (t.key, t.payload)).collect();
        want.sort_unstable();
        assert_eq!(list.items(), want);
    }

    #[test]
    fn concurrent_duplicate_racers_keep_one_copy() {
        // All threads insert the same tiny key set: every key must end up
        // present exactly once no matter who wins each race.
        let list = SkipList::new();
        let rel = Relation::from_tuples((0..4000u64).map(|i| Tuple::new(i % 50, i)).collect());
        let out = coro_skip_insert_mt(&list, &rel, 8, 4, 0xF2);
        assert_eq!(out.inserted, 50);
        assert_eq!(out.duplicates, 3950);
        assert_eq!(list.len(), 50);
    }

    #[test]
    fn agrees_with_state_machine_insert() {
        let rel = Relation::sparse_unique(3000, 71);
        let l1 = SkipList::new();
        coro_skip_insert(&l1, &rel, 10, 0xF3);
        let l2 = SkipList::new();
        amac_ops::skiplist::skip_insert(
            &l2,
            &rel,
            amac::engine::Technique::Amac,
            &Default::default(),
            0xF4,
        );
        assert_eq!(l1.items(), l2.items(), "same contents regardless of tower seeds");
    }

    #[test]
    fn empty_input() {
        let list = SkipList::new();
        let out = coro_skip_insert(&list, &Relation::default(), 10, 1);
        assert_eq!(out.inserted, 0);
        assert!(list.is_empty());
    }
}
