//! Coroutine group-by: §3.2's read/write-dependency handling in the
//! coroutine model.
//!
//! The hand-written AMAC group-by needs an explicit *extra intermediate
//! stage* ("1b") so a lookup that already holds the latch never re-runs
//! the acquire — the paper's deadlock-avoidance refinement. In the
//! coroutine formulation that bookkeeping disappears: the latch state
//! lives in the coroutine's control flow (`loop { try_acquire ∥ yield }`
//! runs *before* the walk, so resumption after a yield continues exactly
//! where it left off). The cooperative retry is still the paper's
//! coarse-grained spin: a failed acquire suspends for one ring rotation
//! instead of burning cycles in place.
//!
//! Works single- and multi-threaded (the latch is an atomic test-and-set;
//! cross-thread conflicts yield exactly like intra-ring ones).

use crate::executor::{
    prefetch_yield, prefetch_yield_write, run_interleaved, yield_now, InterleaveStats,
};
use amac_hashtable::agg::{AggHandle, AggValues};
use amac_hashtable::AggTable;
use amac_metrics::timer::CycleTimer;
use amac_workload::Relation;
use core::cell::RefCell;

/// Aggregate one tuple into its group as a coroutine.
///
/// `handle` is shared by every coroutine in the ring via `RefCell`: node
/// allocation is the only mutation and is transient (never held across a
/// yield), so the ring cannot observe a conflicting borrow.
pub async fn groupby_one(handle: &RefCell<AggHandle<'_>>, key: u64, payload: u64) {
    let header = handle.borrow().table().bucket_addr(key);
    prefetch_yield_write(header).await;
    // Latch acquire with cooperative retry (the §3.2 discipline).
    // SAFETY: header points at a bucket header of the live table; latch
    // and chain access follow the same protocol as the state-machine op.
    unsafe {
        while !(*header).latch.try_acquire() {
            yield_now().await;
        }
        let mut cur = header;
        loop {
            let d = (*cur).data_mut();
            if d.aggs.count == 0 {
                // Empty header: claim it for this group.
                d.key = key;
                d.aggs = AggValues::first(payload);
                (*header).latch.release();
                return;
            }
            if d.key == key {
                d.aggs.update(payload);
                (*header).latch.release();
                return;
            }
            if d.next == amac_mem::NULL_INDEX {
                let (idx, fresh) = handle.borrow_mut().alloc_node();
                let fd = (*fresh).data_mut();
                fd.key = key;
                fd.aggs = AggValues::first(payload);
                d.next = idx;
                (*header).latch.release();
                return;
            }
            let next = handle.borrow().table().node_ptr(d.next);
            prefetch_yield(next).await;
            cur = next;
        }
    }
}

/// Output of a coroutine group-by run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoroGroupByOutput {
    /// Tuples aggregated.
    pub tuples: u64,
    /// Ring counters.
    pub stats: InterleaveStats,
    /// Aggregation-loop cycles.
    pub cycles: u64,
    /// Aggregation-loop wall time.
    pub seconds: f64,
}

/// Aggregate `input` into `table` with `width` coroutines in flight.
pub fn coro_groupby(table: &AggTable, input: &Relation, width: usize) -> CoroGroupByOutput {
    let handle = RefCell::new(table.handle());
    let timer = CycleTimer::start();
    let stats = run_interleaved(
        width,
        &input.tuples,
        |_, t| groupby_one(&handle, t.key, t.payload),
        |_, ()| {},
    );
    CoroGroupByOutput {
        tuples: stats.completed,
        stats,
        cycles: timer.cycles(),
        seconds: timer.seconds(),
    }
}

/// Multi-threaded [`coro_groupby`]: the input is split into `threads`
/// chunks, each aggregated by its own coroutine ring into the shared
/// table (cross-thread latch conflicts yield cooperatively).
pub fn coro_groupby_mt(
    table: &AggTable,
    input: &Relation,
    width: usize,
    threads: usize,
) -> CoroGroupByOutput {
    let threads = threads.max(1);
    let chunk = input.len().div_ceil(threads).max(1);
    let timer = CycleTimer::start();
    let mut total = CoroGroupByOutput::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .tuples
            .chunks(chunk)
            .map(|tuples| {
                s.spawn(move || {
                    let handle = RefCell::new(table.handle());
                    run_interleaved(
                        width,
                        tuples,
                        |_, t| groupby_one(&handle, t.key, t.payload),
                        |_, ()| {},
                    )
                })
            })
            .collect();
        for h in handles {
            let stats = h.join().expect("group-by worker panicked");
            total.tuples += stats.completed;
            total.stats.completed += stats.completed;
            total.stats.polls += stats.polls;
            total.stats.future_bytes = stats.future_bytes;
            total.stats.width = stats.width;
        }
    });
    total.cycles = timer.cycles();
    total.seconds = timer.seconds();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_workload::{GroupByInput, Tuple};
    use std::collections::HashMap;

    fn model_of(rel: &Relation) -> HashMap<u64, AggValues> {
        let mut m: HashMap<u64, AggValues> = HashMap::new();
        for t in &rel.tuples {
            m.entry(t.key)
                .and_modify(|a| a.update(t.payload))
                .or_insert_with(|| AggValues::first(t.payload));
        }
        m
    }

    fn assert_matches(table: &AggTable, model: &HashMap<u64, AggValues>, tag: &str) {
        assert_eq!(table.group_count(), model.len(), "{tag}");
        for (k, v) in model {
            assert_eq!(table.get(*k).as_ref(), Some(v), "{tag}: group {k}");
        }
    }

    #[test]
    fn uniform_input_matches_model() {
        let input = GroupByInput::uniform(1500, 3, 71);
        let model = model_of(&input.relation);
        let table = AggTable::for_groups(input.groups);
        let out = coro_groupby(&table, &input.relation, 10);
        assert_eq!(out.tuples, input.len() as u64);
        assert_matches(&table, &model, "uniform");
    }

    #[test]
    fn skewed_input_with_intra_ring_conflicts() {
        // z = 1 over few groups: the same latch is wanted by many ring
        // slots at once; cooperative yields must resolve it.
        let input = GroupByInput::zipf(32, 10_000, 1.0, 73);
        let model = model_of(&input.relation);
        let table = AggTable::for_groups(32);
        let out = coro_groupby(&table, &input.relation, 16);
        assert_eq!(out.tuples, input.len() as u64);
        assert_matches(&table, &model, "zipf");
        // Conflicts show up as extra polls beyond the conflict-free
        // minimum of 2 per lookup (start + post-latch resume).
        assert!(out.stats.polls > 2 * out.tuples, "hot latches must force retries");
    }

    #[test]
    fn single_group_serialization() {
        let rel = Relation::from_tuples((0..4000).map(|i| Tuple::new(9, i)).collect());
        let table = AggTable::with_buckets(1);
        let out = coro_groupby(&table, &rel, 12);
        assert_eq!(out.tuples, 4000);
        let a = table.get(9).unwrap();
        assert_eq!(a.count, 4000);
        assert_eq!(a.sum, (0..4000u64).sum::<u64>());
    }

    #[test]
    fn multithreaded_matches_model() {
        let input = GroupByInput::zipf(64, 24_000, 0.9, 77);
        let model = model_of(&input.relation);
        let table = AggTable::for_groups(64);
        let out = coro_groupby_mt(&table, &input.relation, 8, 4);
        assert_eq!(out.tuples, input.len() as u64);
        assert_matches(&table, &model, "mt");
    }

    #[test]
    fn agrees_with_state_machine_groupby() {
        let input = GroupByInput::zipf(128, 8_000, 0.5, 79);
        let t1 = AggTable::for_groups(128);
        coro_groupby(&t1, &input.relation, 10);
        let t2 = AggTable::for_groups(128);
        amac_ops::groupby::groupby(
            &t2,
            &input.relation,
            amac::engine::Technique::Amac,
            &Default::default(),
        );
        let mut a = t1.groups();
        let mut b = t2.groups();
        a.sort_by_key(|(k, _)| *k);
        b.sort_by_key(|(k, _)| *k);
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va, vb, "group {ka}");
        }
    }

    #[test]
    fn empty_input() {
        let table = AggTable::for_groups(8);
        let out = coro_groupby(&table, &Relation::default(), 10);
        assert_eq!(out.tuples, 0);
        assert_eq!(table.group_count(), 0);
    }
}
