//! # amac-coro — coroutine front-end for AMAC-style interleaving
//!
//! §6 of the paper ("AMAC automation") proposes that "event-driven
//! programming language concepts such as coroutines that allow for
//! cooperative multitasking within a thread" could generalize AMAC so the
//! developer writes ordinary traversal code instead of hand-crafted stage
//! machines. This crate builds that framework on stable Rust: `async fn`s
//! are compiler-generated resumable state machines, and a tiny
//! waker-free ring executor schedules them with **exactly** AMAC's
//! discipline (rolling counter, skip-pending, merged refill-and-first-poll
//! on completion).
//!
//! ```
//! use amac_coro::{run_interleaved_collect, prefetch_yield};
//! use amac_hashtable::HashTable;
//! use amac_workload::Relation;
//!
//! let r = Relation::dense_unique(1 << 10, 7);
//! let ht = HashTable::build_serial(&r);
//! // Ten lookups in flight; each is plain traversal code with a
//! // prefetch+yield at every pointer dereference.
//! let (payloads, stats) = run_interleaved_collect(10, &r.tuples, |_, t| {
//!     amac_coro::ops::probe_chain(&ht, t.key, false)
//! });
//! assert_eq!(stats.completed, 1 << 10);
//! assert!(payloads.iter().all(|h| h.matches == 1));
//! ```
//!
//! The paper also predicts the cost: "the user-land threads' state
//! maintenance and space overhead". Both are measurable here —
//! [`InterleaveStats::future_bytes`] reports the compiler-laid-out
//! suspended-frame size next to the hand-written state struct's, and
//! `bench/bin/coro` prices the scheduling overhead against
//! `amac::engine::run_amac` on identical probes.

mod executor;
pub mod groupby;
pub mod ops;
pub mod skiplist_ins;

pub use executor::{
    prefetch_yield, prefetch_yield_wide, prefetch_yield_write, run_interleaved,
    run_interleaved_collect, run_interleaved_with_idle, yield_now, InterleaveStats, YieldPoint,
};
pub use groupby::{coro_groupby, coro_groupby_mt, groupby_one, CoroGroupByOutput};
pub use ops::{
    bst_find, btree_find, coro_bst_search, coro_btree_search, coro_probe, coro_probe_mt,
    coro_skip_search, probe_chain, probe_chain_tiered, skip_find, ChainHit, CoroConfig, CoroOutput,
};
pub use skiplist_ins::{coro_skip_insert, coro_skip_insert_mt, skip_insert_one, CoroInsertOutput};
