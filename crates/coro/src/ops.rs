//! Async lookup coroutines for the paper's read-only workloads, plus
//! drivers mirroring the `amac-ops` interface.
//!
//! Each function here is the *baseline* traversal code with
//! [`prefetch_yield`](crate::prefetch_yield()) dropped in at every pointer
//! dereference — the "minimal modifications to baseline code" benefit §6
//! predicts for a coroutine framework. Compare with the hand-written
//! state machines in `amac-ops`: same algorithms, but those had to be
//! factored into explicit stage enums and resumable state structs.

use crate::executor::{run_interleaved, run_interleaved_with_idle, yield_now, InterleaveStats};
use crate::{prefetch_yield, prefetch_yield_wide};
use amac::engine::amu::{AddrClass, LoadUnit, MemUnit};
use amac::engine::EngineStats;
use amac_btree::{BPlusTree, InnerNode, LeafNode};
use amac_hashtable::HashTable;
use amac_metrics::timer::CycleTimer;
use amac_skiplist::{prefetch_node, SkipList};
use amac_tier::{SimClock, TierPolicy, TierSpec};
use amac_trace::{ClassKind, Tracer};
use amac_tree::Bst;
use amac_workload::Relation;
use core::cell::RefCell;

/// Per-lookup result of a chain probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainHit {
    /// Matches found on the chain.
    pub matches: u64,
    /// Wrapping sum of matched payloads.
    pub sum: u64,
    /// First matched payload, or `u64::MAX` on a miss.
    pub first: u64,
}

/// Probe one hash-table chain for `key` as a coroutine.
///
/// `scan_all = false` stops after the first node containing a match
/// (unique-key early exit); `true` walks the whole chain (join semantics
/// under duplicates). Semantics match `amac_ops::join::ProbeOp` exactly.
pub async fn probe_chain(ht: &HashTable, key: u64, scan_all: bool) -> ChainHit {
    let mut hit = ChainHit { matches: 0, sum: 0, first: u64::MAX };
    let probe = amac_hashtable::probe_word(amac_mem::hash::tag_of(key));
    let mut node = ht.bucket_addr(key);
    prefetch_yield(node).await;
    loop {
        // SAFETY: probe runs in the table's read-only phase; `node` points
        // at the header or an arena-owned chain node.
        let d = unsafe { (*node).data() };
        let mut node_hit = false;
        // The same SWAR tag filter as the state-machine op: only a
        // fingerprint hit touches the tuple slots.
        if amac_hashtable::tags_may_match(d.meta, probe) {
            for i in 0..d.count() {
                let t = d.tuples[i];
                if t.key == key {
                    hit.matches += 1;
                    hit.sum = hit.sum.wrapping_add(t.payload);
                    if hit.first == u64::MAX {
                        hit.first = t.payload;
                    }
                    node_hit = true;
                }
            }
        }
        if (node_hit && !scan_all) || d.next == amac_mem::NULL_INDEX {
            return hit;
        }
        let next = ht.node_ptr(d.next);
        prefetch_yield(next).await;
        node = next;
    }
}

/// [`probe_chain`] under a memory-tier cost model: same traversal, same
/// results, but every resumption ticks the ring-shared
/// [`amac::engine::amu::MemUnit`] and every dereference waits until the
/// simulated load lands. The unit is shared by `RefCell` — the whole ring
/// runs on one thread, and a shared unit (over one [`SimClock`]) is
/// exactly the semantics the state-machine executors get from the
/// `sim_now`/`sim_advance_to` protocol. Ring slots are AMU lanes, so a
/// coalescing unit dedups duplicate cache-line requests across in-flight
/// coroutines just as it does across executor window slots.
///
/// Deliberately a separate coroutine rather than an
/// `Option<&RefCell<...>>` parameter on [`probe_chain`]: the unit
/// reference and `ready_at` live across the yields, so folding the paths
/// together grows the *untiered* suspended frame (`future_bytes`, the
/// §6 state-overhead metric `bin/coro` reports) from ≤128 B past two
/// cache lines. Result equivalence between the two bodies is asserted
/// by `tiered_probe_matches_untiered_and_hides_by_width` and in-run by
/// `bench/bin/tier.rs`.
pub async fn probe_chain_tiered(
    ht: &HashTable,
    key: u64,
    scan_all: bool,
    unit: &RefCell<LoadUnit<SimClock>>,
) -> ChainHit {
    let mut hit = ChainHit { matches: 0, sum: 0, first: u64::MAX };
    let probe = amac_hashtable::probe_word(amac_mem::hash::tag_of(key));
    let mut node = ht.bucket_addr(key);
    // Stage 0: hash + first prefetch (one tick, async header load).
    let (mut ready, group) = {
        let mut u = unit.borrow_mut();
        let group = u.begin_lane();
        u.stage();
        let t = u.issue(AddrClass::header_ptr(node), 0, group);
        (t.ready_at, group)
    };
    prefetch_yield(node).await;
    loop {
        {
            let mut u = unit.borrow_mut();
            u.wait(ready);
            u.stage();
        }
        // SAFETY: probe runs in the table's read-only phase; `node` points
        // at the header or an arena-owned chain node.
        let d = unsafe { (*node).data() };
        let mut node_hit = false;
        if amac_hashtable::tags_may_match(d.meta, probe) {
            for i in 0..d.count() {
                let t = d.tuples[i];
                if t.key == key {
                    hit.matches += 1;
                    hit.sum = hit.sum.wrapping_add(t.payload);
                    if hit.first == u64::MAX {
                        hit.first = t.payload;
                    }
                    node_hit = true;
                }
            }
        }
        if (node_hit && !scan_all) || d.next == amac_mem::NULL_INDEX {
            unit.borrow_mut().retire_lane(group);
            return hit;
        }
        let next = ht.node_ptr(d.next);
        ready = unit
            .borrow_mut()
            .issue(AddrClass::slab_ptr(amac_mem::slab_of_index(d.next), next), 0, group)
            .ready_at;
        prefetch_yield(next).await;
        node = next;
    }
}

/// [`probe_chain_tiered`] with structured tracing: identical traversal
/// and identical clock charges, but every dereference records a load
/// event (classified against `policy`, the spec the `unit`'s clock was
/// built from) into the ring-shared tracer immediately before its wait —
/// so the recorded stall is exactly what the wait charges — and every
/// completion records a retirement. A third coroutine body for the same
/// reason [`probe_chain_tiered`] is one: the tracer reference and
/// hop/slab locals live across yields, and folding them into the traced
/// path would grow the frames of runs that never trace.
pub async fn probe_chain_traced(
    ht: &HashTable,
    key: u64,
    scan_all: bool,
    unit: &RefCell<LoadUnit<SimClock>>,
    policy: TierPolicy,
    trace: &RefCell<Tracer>,
) -> ChainHit {
    let mut hit = ChainHit { matches: 0, sum: 0, first: u64::MAX };
    let probe = amac_hashtable::probe_word(amac_mem::hash::tag_of(key));
    let mut node = ht.bucket_addr(key);
    let (mut ready, group) = {
        let mut u = unit.borrow_mut();
        let group = u.begin_lane();
        u.stage();
        let t = u.issue(AddrClass::header_ptr(node), 0, group);
        (t.ready_at, group)
    };
    let mut hop: u32 = 0;
    let mut slab: u32 = 0;
    prefetch_yield(node).await;
    loop {
        {
            let mut u = unit.borrow_mut();
            let mut tr = trace.borrow_mut();
            if tr.enabled() {
                let (class, tier) = if hop == 0 {
                    (ClassKind::Header, amac_tier::trace_tier(policy.header_tier()))
                } else {
                    (ClassKind::Slab, amac_tier::trace_tier(policy.slab_tier(slab)))
                };
                let h = hop.min(u16::MAX as u32) as u16;
                tr.load(u.now(), "probe", key, class, tier, h, ready);
            }
            u.wait(ready);
            u.stage();
        }
        // SAFETY: probe runs in the table's read-only phase; `node` points
        // at the header or an arena-owned chain node.
        let d = unsafe { (*node).data() };
        let mut node_hit = false;
        if amac_hashtable::tags_may_match(d.meta, probe) {
            for i in 0..d.count() {
                let t = d.tuples[i];
                if t.key == key {
                    hit.matches += 1;
                    hit.sum = hit.sum.wrapping_add(t.payload);
                    if hit.first == u64::MAX {
                        hit.first = t.payload;
                    }
                    node_hit = true;
                }
            }
        }
        if (node_hit && !scan_all) || d.next == amac_mem::NULL_INDEX {
            let mut u = unit.borrow_mut();
            let mut tr = trace.borrow_mut();
            if tr.enabled() {
                tr.retire(u.now(), "probe", key, hop.min(u16::MAX as u32) as u16, false);
            }
            u.retire_lane(group);
            return hit;
        }
        let next = ht.node_ptr(d.next);
        hop += 1;
        slab = amac_mem::slab_of_index(d.next);
        ready = unit.borrow_mut().issue(AddrClass::slab_ptr(slab, next), 0, group).ready_at;
        prefetch_yield(next).await;
        node = next;
    }
}

/// Search the BST for `key` as a coroutine.
pub async fn bst_find(tree: &Bst, key: u64) -> Option<u64> {
    let mut cur = tree.root();
    if cur.is_null() {
        return None;
    }
    prefetch_yield(cur).await;
    loop {
        // SAFETY: read-only phase; nodes are arena-owned by the tree.
        let node = unsafe { &*cur };
        use core::cmp::Ordering::*;
        cur = match key.cmp(&node.key) {
            Equal => return Some(node.payload),
            Less => node.left,
            Greater => node.right,
        };
        if cur.is_null() {
            return None;
        }
        prefetch_yield(cur).await;
    }
}

/// Search the B+-tree for `key` as a coroutine.
pub async fn btree_find(tree: &BPlusTree, key: u64) -> Option<u64> {
    let mut ptr = tree.root_ptr();
    if ptr.is_null() {
        return None;
    }
    prefetch_yield_wide(ptr).await;
    for _ in 1..tree.height() {
        // SAFETY: read-only phase; levels above the last are inner nodes.
        let inner = unsafe { &*ptr.cast::<InnerNode>() };
        ptr = inner.select_child(key);
        prefetch_yield_wide(ptr).await;
    }
    // SAFETY: the last level is a leaf.
    unsafe { (*ptr.cast::<LeafNode>()).lookup(key) }
}

/// Search the skip list for `key` as a coroutine (Table 1's search
/// stages: advance on `<`, match on `==`, descend on `>` — here as plain
/// control flow rather than a stage enum).
pub async fn skip_find(list: &SkipList, key: u64) -> Option<u64> {
    let mut level = list.level();
    let mut cur = list.head();
    // SAFETY: read-only traversal over arena-owned nodes with acquire
    // loads; the head sentinel always has a full-height tower.
    unsafe {
        let mut next = (*cur).next_ptr(level);
        prefetch_node(next, level);
        yield_now().await;
        loop {
            if !next.is_null() && (*next).key < key {
                cur = next;
                next = (*next).next_ptr(level);
                prefetch_node(next, level);
                yield_now().await;
                continue;
            }
            if !next.is_null() && (*next).key == key {
                return Some((*next).payload);
            }
            if level == 0 {
                return None;
            }
            level -= 1;
            next = (*cur).next_ptr(level);
            prefetch_node(next, level);
            yield_now().await;
        }
    }
}

/// Output of a coroutine-interleaved probe run.
#[derive(Debug, Clone, Default)]
pub struct CoroOutput {
    /// Total key matches found.
    pub matches: u64,
    /// Wrapping sum of matched payloads (order-independent checksum).
    pub checksum: u64,
    /// First-match payload per input tuple (`u64::MAX` = miss) when
    /// materializing.
    pub out: Vec<u64>,
    /// Executor counters, including the suspended-state size.
    pub stats: InterleaveStats,
    /// Simulated work ticks ([`CoroConfig::tier`] runs only).
    pub sim_cycles: u64,
    /// Simulated stall ticks ([`CoroConfig::tier`] runs only).
    pub sim_stalls: u64,
    /// Distinct load requests the AMU issued ([`CoroConfig::tier`] runs
    /// only; see `amac::engine::EngineStats::issued_loads`).
    pub issued_loads: u64,
    /// Requests absorbed by an already-issued line
    /// ([`CoroConfig::coalesce`] runs only).
    pub coalesced_loads: u64,
    /// Loop cycles.
    pub cycles: u64,
    /// Loop wall time.
    pub seconds: f64,
    /// Structured trace of the ring's loads/stalls/retirements (disabled
    /// and empty unless [`CoroConfig::trace`] was set on a tiered run).
    pub trace: Tracer,
}

/// Coroutine driver configuration.
#[derive(Debug, Clone)]
pub struct CoroConfig {
    /// In-flight coroutines (the paper's `M`).
    pub width: usize,
    /// Walk full chains (join semantics) instead of early exit.
    pub scan_all: bool,
    /// Materialize first-match payloads in input order.
    pub materialize: bool,
    /// Memory-tier cost model: `Some` probes through
    /// [`probe_chain_tiered`] and reports
    /// [`sim_cycles`](CoroOutput::sim_cycles)/[`sim_stalls`](CoroOutput::sim_stalls).
    /// Results are identical either way.
    pub tier: Option<TierSpec>,
    /// AMU issue coalescing across the ring's in-flight coroutines (see
    /// `amac_ops::join::ProbeConfig::coalesce`). Only meaningful with
    /// [`tier`](CoroConfig::tier); results are identical either way.
    pub coalesce: Option<usize>,
    /// Record a structured trace into [`CoroOutput::trace`] via
    /// [`probe_chain_traced`]. Only meaningful with
    /// [`tier`](CoroConfig::tier) (an untiered ring has no clock to key
    /// events on); results are identical either way.
    pub trace: bool,
}

impl Default for CoroConfig {
    fn default() -> Self {
        CoroConfig {
            width: 10,
            scan_all: false,
            materialize: true,
            tier: None,
            coalesce: None,
            trace: false,
        }
    }
}

/// Hash-join probe of `s` against `ht`, coroutine-interleaved.
pub fn coro_probe(ht: &HashTable, s: &Relation, cfg: &CoroConfig) -> CoroOutput {
    let mut res = CoroOutput {
        out: if cfg.materialize { vec![u64::MAX; s.len()] } else { Vec::new() },
        ..Default::default()
    };
    let scan_all = cfg.scan_all;
    let timer = CycleTimer::start();
    let mut harvested = Tracer::off();
    {
        let (matches, checksum, materialize) =
            (&mut res.matches, &mut res.checksum, cfg.materialize);
        let out = &mut res.out;
        let sink = |idx: usize, hit: ChainHit| {
            *matches += hit.matches;
            *checksum = checksum.wrapping_add(hit.sum);
            if materialize {
                out[idx] = hit.first;
            }
        };
        match cfg.tier {
            None => {
                res.stats = run_interleaved(
                    cfg.width,
                    &s.tuples,
                    |_, t| probe_chain(ht, t.key, scan_all),
                    sink,
                );
            }
            Some(spec) => {
                let unit = RefCell::new(LoadUnit::new(spec.clock(), cfg.coalesce));
                if cfg.trace {
                    let trace = RefCell::new(Tracer::on());
                    res.stats = run_interleaved_with_idle(
                        cfg.width,
                        &s.tuples,
                        |_, t| probe_chain_traced(ht, t.key, scan_all, &unit, spec.policy, &trace),
                        sink,
                        || unit.borrow_mut().idle(1),
                    );
                    harvested = trace.into_inner();
                } else {
                    res.stats = run_interleaved_with_idle(
                        cfg.width,
                        &s.tuples,
                        |_, t| probe_chain_tiered(ht, t.key, scan_all, &unit),
                        sink,
                        || unit.borrow_mut().idle(1),
                    );
                }
                let mut drained = EngineStats::default();
                unit.borrow_mut().flush(&mut drained);
                res.sim_cycles = drained.sim_cycles;
                res.sim_stalls = drained.sim_stalls;
                res.issued_loads = drained.issued_loads;
                res.coalesced_loads = drained.coalesced_loads;
            }
        }
    }
    res.trace = harvested;
    res.cycles = timer.cycles();
    res.seconds = timer.seconds();
    res
}

/// Multi-threaded [`coro_probe`]: `s` is split into `threads` chunks,
/// each probed by its own coroutine ring (the Fig. 7 scalability driver
/// in the coroutine model; probes are read-only, so no coordination is
/// needed beyond the final merge).
pub fn coro_probe_mt(ht: &HashTable, s: &Relation, cfg: &CoroConfig, threads: usize) -> CoroOutput {
    let threads = threads.max(1);
    let chunk = s.len().div_ceil(threads).max(1);
    let mut res = CoroOutput::default();
    let timer = CycleTimer::start();
    std::thread::scope(|scope| {
        let handles: Vec<_> = s
            .tuples
            .chunks(chunk)
            .map(|tuples| {
                let scan_all = cfg.scan_all;
                let width = cfg.width;
                scope.spawn(move || {
                    let (mut matches, mut checksum) = (0u64, 0u64);
                    let stats = run_interleaved(
                        width,
                        tuples,
                        |_, t| probe_chain(ht, t.key, scan_all),
                        |_, hit: ChainHit| {
                            matches += hit.matches;
                            checksum = checksum.wrapping_add(hit.sum);
                        },
                    );
                    (matches, checksum, stats)
                })
            })
            .collect();
        for h in handles {
            let (m, c, stats) = h.join().expect("probe worker panicked");
            res.matches += m;
            res.checksum = res.checksum.wrapping_add(c);
            res.stats.completed += stats.completed;
            res.stats.polls += stats.polls;
            res.stats.future_bytes = stats.future_bytes;
            res.stats.width = stats.width;
        }
    });
    res.cycles = timer.cycles();
    res.seconds = timer.seconds();
    res
}

/// BST search of `probe_rel` against `tree`, coroutine-interleaved.
pub fn coro_bst_search(tree: &Bst, probe_rel: &Relation, cfg: &CoroConfig) -> CoroOutput {
    let mut res = CoroOutput {
        out: if cfg.materialize { vec![u64::MAX; probe_rel.len()] } else { Vec::new() },
        ..Default::default()
    };
    let timer = CycleTimer::start();
    let (matches, checksum, materialize) = (&mut res.matches, &mut res.checksum, cfg.materialize);
    let out = &mut res.out;
    res.stats = run_interleaved(
        cfg.width,
        &probe_rel.tuples,
        |_, t| bst_find(tree, t.key),
        |idx, found: Option<u64>| {
            if let Some(p) = found {
                *matches += 1;
                *checksum = checksum.wrapping_add(p);
                if materialize {
                    out[idx] = p;
                }
            }
        },
    );
    res.cycles = timer.cycles();
    res.seconds = timer.seconds();
    res
}

/// Skip-list search of `probe_rel` against `list`, coroutine-interleaved.
pub fn coro_skip_search(list: &SkipList, probe_rel: &Relation, cfg: &CoroConfig) -> CoroOutput {
    let mut res = CoroOutput {
        out: if cfg.materialize { vec![u64::MAX; probe_rel.len()] } else { Vec::new() },
        ..Default::default()
    };
    let timer = CycleTimer::start();
    let (matches, checksum, materialize) = (&mut res.matches, &mut res.checksum, cfg.materialize);
    let out = &mut res.out;
    res.stats = run_interleaved(
        cfg.width,
        &probe_rel.tuples,
        |_, t| skip_find(list, t.key),
        |idx, found: Option<u64>| {
            if let Some(p) = found {
                *matches += 1;
                *checksum = checksum.wrapping_add(p);
                if materialize {
                    out[idx] = p;
                }
            }
        },
    );
    res.cycles = timer.cycles();
    res.seconds = timer.seconds();
    res
}

/// B+-tree search of `probe_rel` against `tree`, coroutine-interleaved.
pub fn coro_btree_search(tree: &BPlusTree, probe_rel: &Relation, cfg: &CoroConfig) -> CoroOutput {
    let mut res = CoroOutput {
        out: if cfg.materialize { vec![u64::MAX; probe_rel.len()] } else { Vec::new() },
        ..Default::default()
    };
    let timer = CycleTimer::start();
    let (matches, checksum, materialize) = (&mut res.matches, &mut res.checksum, cfg.materialize);
    let out = &mut res.out;
    res.stats = run_interleaved(
        cfg.width,
        &probe_rel.tuples,
        |_, t| btree_find(tree, t.key),
        |idx, found: Option<u64>| {
            if let Some(p) = found {
                *matches += 1;
                *checksum = checksum.wrapping_add(p);
                if materialize {
                    out[idx] = p;
                }
            }
        },
    );
    res.cycles = timer.cycles();
    res.seconds = timer.seconds();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_workload::Tuple;

    #[test]
    fn probe_finds_every_fk_match() {
        let r = Relation::dense_unique(1 << 12, 11);
        let s = Relation::fk_uniform(&r, 1 << 13, 12);
        let ht = HashTable::build_serial(&r);
        let out = coro_probe(&ht, &s, &CoroConfig::default());
        assert_eq!(out.matches, 1 << 13);
        assert!(out.out.iter().all(|&p| p != u64::MAX));
    }

    #[test]
    fn tiered_probe_matches_untiered_and_hides_by_width() {
        let domain = 256u64;
        let build = Relation::zipf(4096, domain, 0.5, 0xC0);
        let ht = HashTable::build_serial(&build);
        let s = Relation::zipf(4096, domain, 0.0, 0xC0);
        let cfg = CoroConfig { scan_all: true, ..Default::default() };
        let plain = coro_probe(&ht, &s, &cfg);
        assert_eq!((plain.sim_cycles, plain.sim_stalls), (0, 0), "untiered charges nothing");
        for mult in [1u64, 8] {
            let spec = Some(TierSpec::headers_near(mult));
            // Wide ring: every far load lands before its slot is re-polled.
            let far = 4 * mult as usize;
            let wide =
                coro_probe(&ht, &s, &CoroConfig { width: far + 2, tier: spec, ..cfg.clone() });
            assert_eq!(wide.matches, plain.matches, "mult {mult}: results diverged");
            assert_eq!(wide.checksum, plain.checksum, "mult {mult}");
            assert_eq!(wide.out, plain.out, "mult {mult}: materialization diverged");
            assert_eq!(wide.sim_stalls, 0, "mult {mult}: ring of {} must hide {far}", far + 2);
            assert!(wide.sim_cycles > 0, "mult {mult}: the clock must tick");
        }
        // A 1-wide ring is the serial baseline: every hop exposes latency.
        let serial = coro_probe(
            &ht,
            &s,
            &CoroConfig { width: 1, tier: Some(TierSpec::headers_near(8)), ..cfg.clone() },
        );
        assert_eq!(serial.matches, plain.matches);
        assert!(serial.sim_stalls > 0, "width 1 cannot hide the far tier");
    }

    #[test]
    fn probe_scan_all_counts_duplicates() {
        let tuples: Vec<Tuple> =
            (0..256u64).flat_map(|k| [Tuple::new(k, 1), Tuple::new(k, 2)]).collect();
        let ht = HashTable::build_serial(&Relation::from_tuples(tuples));
        let probe_rel = Relation::from_tuples((0..256u64).map(|k| Tuple::new(k, 0)).collect());
        let out = coro_probe(&ht, &probe_rel, &CoroConfig { scan_all: true, ..Default::default() });
        assert_eq!(out.matches, 512);
        assert_eq!(out.checksum, 256 * 3);
    }

    #[test]
    fn bst_search_hits_and_misses() {
        let rel = Relation::sparse_unique(4096, 21);
        let tree = Bst::build(&rel);
        let out = coro_bst_search(&tree, &rel.shuffled(22), &CoroConfig::default());
        assert_eq!(out.matches, 4096);
        let missing =
            Relation::from_tuples((0..64u64).map(|k| Tuple::new(k | (1 << 63), 0)).collect());
        let miss_keys = missing.tuples.iter().filter(|t| tree.get(t.key).is_none()).count();
        let out = coro_bst_search(&tree, &missing, &CoroConfig::default());
        assert_eq!(out.matches as usize, missing.len() - miss_keys);
    }

    #[test]
    fn btree_search_matches_reference() {
        let rel = Relation::sparse_unique(10_000, 31);
        let tree = BPlusTree::build(&rel);
        let probe_rel = rel.shuffled(32);
        let out = coro_btree_search(&tree, &probe_rel, &CoroConfig::default());
        assert_eq!(out.matches, 10_000);
        for (i, t) in probe_rel.tuples.iter().enumerate() {
            assert_eq!(out.out[i], tree.get(t.key).unwrap(), "key {}", t.key);
        }
    }

    #[test]
    fn multithreaded_probe_matches_single() {
        let r = Relation::dense_unique(1 << 14, 91);
        let s = r.shuffled(92);
        let ht = HashTable::build_serial(&r);
        let single = coro_probe(&ht, &s, &CoroConfig { materialize: false, ..Default::default() });
        for threads in [1usize, 2, 4, 7] {
            let mt = coro_probe_mt(
                &ht,
                &s,
                &CoroConfig { materialize: false, ..Default::default() },
                threads,
            );
            assert_eq!(mt.matches, single.matches, "threads={threads}");
            assert_eq!(mt.checksum, single.checksum, "threads={threads}");
            assert_eq!(mt.stats.completed, s.len() as u64, "threads={threads}");
        }
    }

    #[test]
    fn skip_search_matches_reference() {
        let rel = Relation::sparse_unique(4096, 51);
        let list = SkipList::new();
        {
            let mut h = list.handle(7);
            for t in &rel.tuples {
                h.insert(t.key, t.payload);
            }
        }
        let probe_rel = rel.shuffled(52);
        let out = coro_skip_search(&list, &probe_rel, &CoroConfig::default());
        assert_eq!(out.matches, 4096);
        for (i, t) in probe_rel.tuples.iter().enumerate() {
            assert_eq!(out.out[i], list.get(t.key).unwrap(), "key {}", t.key);
        }
        // Misses stay misses.
        let missing = Relation::from_tuples(
            (0..100u64)
                .map(|i| Tuple::new(i | (1 << 61), 0))
                .filter(|t| list.get(t.key).is_none())
                .collect(),
        );
        let out = coro_skip_search(&list, &missing, &CoroConfig::default());
        assert_eq!(out.matches, 0);
    }

    #[test]
    fn empty_structures() {
        let ht = HashTable::with_buckets(4);
        let probe_rel = Relation::from_tuples(vec![Tuple::new(1, 0)]);
        assert_eq!(coro_probe(&ht, &probe_rel, &CoroConfig::default()).matches, 0);
        let tree = Bst::new();
        assert_eq!(coro_bst_search(&tree, &probe_rel, &CoroConfig::default()).matches, 0);
        let bt = BPlusTree::new();
        assert_eq!(coro_btree_search(&bt, &probe_rel, &CoroConfig::default()).matches, 0);
    }

    #[test]
    fn suspended_state_size_is_reported() {
        let rel = Relation::dense_unique(128, 1);
        let ht = HashTable::build_serial(&rel);
        let out = coro_probe(&ht, &rel, &CoroConfig::default());
        // The §6 overhead concern: a compiled coroutine frame carries the
        // chain pointer, key, flags and the yield-point state. It cannot
        // be empty and should stay within a couple of cache lines.
        assert!(out.stats.future_bytes > 0);
        assert!(
            out.stats.future_bytes <= 128,
            "probe coroutine frame unexpectedly large: {} B",
            out.stats.future_bytes
        );
    }
}
