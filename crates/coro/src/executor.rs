//! The interleaving ring executor and its yield primitives.
//!
//! This is AMAC's circular buffer re-expressed over Rust's compiler-built
//! coroutines: each lookup is a future whose suspension points sit right
//! after its prefetch instructions, and the executor is a rolling-counter
//! ring that polls one slot per turn. The scheduling is *identical* to
//! `amac::engine::run_amac` — including the merged terminal+initial stage:
//! a freshly refilled slot is polled immediately, so its first prefetch
//! issues in the same turn the previous lookup finished.
//!
//! No wakers, no reactor, no allocation per lookup: futures of one
//! concrete type live in a fixed ring of `Option<Fut>` slots and are
//! constructed, polled, and dropped in place.

use core::future::Future;
use core::pin::Pin;
use core::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// A future that is `Pending` exactly once and `Ready` on its second poll.
///
/// Await this right after issuing a prefetch: the suspension hands the
/// thread to the other in-flight lookups while the prefetched line is in
/// transit — the coroutine equivalent of AMAC's save-state-and-rotate.
#[derive(Debug, Default)]
pub struct YieldPoint {
    polled: bool,
}

impl Future for YieldPoint {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            Poll::Pending
        }
    }
}

/// Suspend the current lookup for one ring rotation.
#[inline]
pub fn yield_now() -> YieldPoint {
    YieldPoint::default()
}

/// Prefetch the cache line holding `ptr`, then suspend for one rotation —
/// the fused "issue the access, switch lookups" step of Listing 1.
#[inline]
pub async fn prefetch_yield<T>(ptr: *const T) {
    amac_mem::prefetch::prefetch_read(ptr);
    yield_now().await;
}

/// Prefetch both cache lines of a two-line (128-byte) node, then suspend.
#[inline]
pub async fn prefetch_yield_wide<T>(ptr: *const T) {
    amac_mem::prefetch::prefetch_read(ptr);
    // SAFETY: prefetch is a non-faulting hint; the target type spans 128
    // bytes by the caller's contract.
    amac_mem::prefetch::prefetch_read(unsafe { ptr.cast::<u8>().add(64) });
    yield_now().await;
}

/// Prefetch for writing (exclusive state), then suspend — used by update
/// lookups (group-by, build) whose first node access mutates.
#[inline]
pub async fn prefetch_yield_write<T>(ptr: *const T) {
    amac_mem::prefetch::prefetch_write(ptr);
    yield_now().await;
}

// The cooperative scheduler never parks, so wakers are inert.
const NOOP_VTABLE: RawWakerVTable =
    RawWakerVTable::new(|_| RawWaker::new(core::ptr::null(), &NOOP_VTABLE), |_| {}, |_| {}, |_| {});

fn noop_waker() -> Waker {
    // SAFETY: every vtable entry is a no-op over a null pointer, which
    // trivially satisfies the RawWaker contract.
    unsafe { Waker::from_raw(RawWaker::new(core::ptr::null(), &NOOP_VTABLE)) }
}

/// Counters for one interleaved run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterleaveStats {
    /// Lookups completed.
    pub completed: u64,
    /// Future polls (resumptions), including each lookup's first poll.
    pub polls: u64,
    /// Size of one suspended lookup's state in bytes
    /// (`size_of::<Fut>()`) — the §6 "state maintenance and space
    /// overhead" the paper worries about, measurable here.
    pub future_bytes: usize,
    /// Ring width used (the paper's `M`).
    pub width: usize,
}

/// One ring slot: the live future (if any) plus the input index it serves
/// (AMAC's `rid` field, used to materialize results in input order).
struct Slot<Fut> {
    fut: Option<Fut>,
    idx: usize,
}

/// Run one coroutine per input, keeping up to `width` of them in flight.
///
/// `make(idx, input)` constructs the lookup coroutine; `sink(idx, out)`
/// receives each result as it completes (out of input order — pass the
/// index through, exactly like the paper preserves row ids through the
/// `rid` state field).
///
/// The schedule is AMAC's: a rolling counter walks the ring; `Pending`
/// slots are skipped past, and a completing slot is refilled from the
/// input stream and given its first poll immediately.
pub fn run_interleaved<I, T, F, Fut, S>(
    width: usize,
    inputs: &[I],
    make: F,
    sink: S,
) -> InterleaveStats
where
    I: Copy,
    F: FnMut(usize, I) -> Fut,
    Fut: Future<Output = T>,
    S: FnMut(usize, T),
{
    run_interleaved_with_idle(width, inputs, make, sink, || {})
}

/// [`run_interleaved`] with an `on_idle` callback fired once per ring
/// visit to a **drained** slot (a slot whose future completed after the
/// input ran out). The ring's rotation over such slots is the coroutine
/// analogue of AMAC's drain-phase status checks: a tiered run passes a
/// closure ticking its `amac_tier::SimClock` one idle tick, so simulated
/// prefetch distances keep pace with the rotation exactly as in the
/// state-machine executors (`LookupOp::sim_idle`).
pub fn run_interleaved_with_idle<I, T, F, Fut, S, D>(
    width: usize,
    inputs: &[I],
    mut make: F,
    mut sink: S,
    mut on_idle: D,
) -> InterleaveStats
where
    I: Copy,
    F: FnMut(usize, I) -> Fut,
    Fut: Future<Output = T>,
    S: FnMut(usize, T),
    D: FnMut(),
{
    let width = width.max(1).min(inputs.len().max(1));
    let mut stats = InterleaveStats {
        completed: 0,
        polls: 0,
        future_bytes: core::mem::size_of::<Fut>(),
        width,
    };
    if inputs.is_empty() {
        return stats;
    }

    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);

    // The ring: fixed-size, never reallocated, so slot addresses are
    // stable and in-place pinning below is sound.
    let mut ring: Vec<Slot<Fut>> = Vec::with_capacity(width);
    let mut next = 0usize;
    let mut live = 0usize;

    // Prologue: prime up to `width` lookups. Each gets its first poll at
    // its first ring turn below (the ring starts full, so no turn is
    // wasted).
    while next < inputs.len() && ring.len() < width {
        ring.push(Slot { fut: Some(make(next, inputs[next])), idx: next });
        next += 1;
        live += 1;
    }

    // Main loop: rolling counter over the ring (Listing 1's `k`).
    let mut k = 0usize;
    while live > 0 {
        let slot = &mut ring[k];
        if slot.fut.is_none() {
            // Drained slot: the rotation's status check still costs a
            // tick of simulated time.
            on_idle();
        }
        // Refill loop: a Ready slot immediately starts (and first-polls)
        // the next lookup — the merged terminal+initial stage.
        while let Some(fut) = slot.fut.as_mut() {
            stats.polls += 1;
            // SAFETY: the future lives in a ring slot that is neither
            // moved nor reallocated between its first poll and its drop;
            // we only drop it in place (`slot.fut = None` / reassignment)
            // after completion.
            let pinned = unsafe { Pin::new_unchecked(fut) };
            match pinned.poll(&mut cx) {
                Poll::Pending => break,
                Poll::Ready(out) => {
                    stats.completed += 1;
                    sink(slot.idx, out);
                    if next < inputs.len() {
                        slot.fut = Some(make(next, inputs[next]));
                        slot.idx = next;
                        next += 1;
                        // Loop again: give the fresh lookup its stage-0
                        // poll (hash + first prefetch) right now.
                    } else {
                        slot.fut = None;
                        live -= 1;
                        break;
                    }
                }
            }
        }
        // Rolling counter, not modulo — same micro-optimization as
        // Listing 1.
        k += 1;
        if k == ring.len() {
            k = 0;
        }
    }
    stats
}

/// [`run_interleaved`], materializing results in input order.
pub fn run_interleaved_collect<I, T, F, Fut>(
    width: usize,
    inputs: &[I],
    make: F,
) -> (Vec<T>, InterleaveStats)
where
    I: Copy,
    T: Default + Clone,
    F: FnMut(usize, I) -> Fut,
    Fut: Future<Output = T>,
{
    let mut out = vec![T::default(); inputs.len()];
    let stats = run_interleaved(width, inputs, make, |idx, v| out[idx] = v);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cell::RefCell;

    #[test]
    fn yield_point_is_pending_exactly_once() {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut y = yield_now();
        let mut p = unsafe { Pin::new_unchecked(&mut y) };
        assert_eq!(p.as_mut().poll(&mut cx), Poll::Pending);
        assert_eq!(p.as_mut().poll(&mut cx), Poll::Ready(()));
    }

    #[test]
    fn results_arrive_for_every_input_in_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let (out, stats) = run_interleaved_collect(8, &inputs, |_, x| async move {
            yield_now().await;
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.width, 8);
        // Two polls per lookup: one reaching the yield, one resuming.
        assert_eq!(stats.polls, 200);
    }

    #[test]
    fn execution_actually_interleaves() {
        // Each coroutine logs its id at every resumption; with width 4 the
        // log must mix ids rather than run each to completion first.
        let log = RefCell::new(Vec::new());
        let inputs: Vec<u64> = (0..4).collect();
        run_interleaved(
            4,
            &inputs,
            |_, id| {
                let log = &log;
                async move {
                    for _ in 0..3 {
                        log.borrow_mut().push(id);
                        yield_now().await;
                    }
                }
            },
            |_, ()| {},
        );
        let log = log.into_inner();
        // Sequential execution would be [0,0,0,1,1,1,...]; interleaved is
        // round-robin [0,1,2,3,0,1,2,3,...].
        assert_eq!(log[..4], [0, 1, 2, 3], "first rotation visits every slot");
        assert_eq!(log[4..8], [0, 1, 2, 3], "second rotation revisits in ring order");
    }

    #[test]
    fn width_one_is_sequential() {
        let log = RefCell::new(Vec::new());
        let inputs: Vec<u64> = (0..3).collect();
        run_interleaved(
            1,
            &inputs,
            |_, id| {
                let log = &log;
                async move {
                    log.borrow_mut().push((id, 'a'));
                    yield_now().await;
                    log.borrow_mut().push((id, 'b'));
                }
            },
            |_, ()| {},
        );
        assert_eq!(
            log.into_inner(),
            vec![(0, 'a'), (0, 'b'), (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]
        );
    }

    #[test]
    fn immediately_ready_futures_refill_in_same_turn() {
        // Coroutines with no yield: the refill loop must chew through all
        // inputs without deadlocking or skipping.
        let inputs: Vec<u64> = (0..50).collect();
        let (out, stats) = run_interleaved_collect(4, &inputs, |_, x| async move { x + 1 });
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        assert_eq!(stats.polls, 50, "one poll per no-yield lookup");
    }

    #[test]
    fn empty_inputs() {
        let inputs: Vec<u64> = Vec::new();
        let (out, stats) = run_interleaved_collect(8, &inputs, |_, x: u64| async move { x });
        assert!(out.is_empty());
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.polls, 0);
    }

    #[test]
    fn width_larger_than_input_clamps() {
        let inputs: Vec<u64> = (0..3).collect();
        let (out, stats) = run_interleaved_collect(1000, &inputs, |_, x| async move {
            yield_now().await;
            x
        });
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(stats.width, 3);
    }

    #[test]
    fn future_bytes_reported() {
        let inputs = [0u64];
        let big = [0u8; 256];
        let (_, stats) = run_interleaved_collect(1, &inputs, move |_, x| async move {
            yield_now().await;
            // Force `big` into the suspended state across the yield.
            x + big[0] as u64
        });
        assert!(stats.future_bytes >= 256, "state must include captured data");
    }

    #[test]
    fn out_of_order_completion_lands_at_right_index() {
        // Lookup i yields i times, so later inputs can finish earlier.
        let inputs: Vec<u64> = vec![5, 0, 3, 1];
        let order = RefCell::new(Vec::new());
        run_interleaved(
            4,
            &inputs,
            |_, yields| async move {
                for _ in 0..yields {
                    yield_now().await;
                }
                yields * 10
            },
            |idx, v| order.borrow_mut().push((idx, v)),
        );
        let order = order.into_inner();
        // Input 1 (zero yields) completes first; input 0 (five) last.
        assert_eq!(order.first().map(|&(i, _)| i), Some(1));
        assert_eq!(order.last().map(|&(i, _)| i), Some(0));
        // Every index got its own value.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(0, 50), (1, 0), (2, 30), (3, 10)]);
    }
}
