//! Minimal offline stand-in for the `criterion` crate.
//!
//! Same bench-source API as criterion 0.5 for the surface this workspace
//! uses (`benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`), but the measurement loop is a
//! plain "warm up, time `sample_size` samples, report mean/min" —
//! no statistics engine, no HTML reports, no baseline comparisons.
//!
//! Environment knobs: `CRITERION_SAMPLE_MS` (per-sample target in
//! milliseconds, default 20) and `CRITERION_QUICK=1` (one sample, one
//! iteration — smoke mode for CI).

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark processes per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (tuples, lookups…) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name` plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group name provides the context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
    quick: bool,
}

impl Bencher {
    /// Call `f` repeatedly until the sample's time budget is spent,
    /// accumulating elapsed time and iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
            if self.quick || self.elapsed >= self.target {
                break;
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters_done == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn sample_budget() -> Duration {
    let ms =
        std::env::var("CRITERION_SAMPLE_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(20);
    Duration::from_millis(ms)
}

/// The benchmark manager; handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept and ignore command-line configuration (compat no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup { _c: self, name, throughput: None, samples: 10 }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of related benchmarks sharing throughput units.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(1);
    }

    /// Time `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        self.run(id.into(), &mut |b| f(b));
    }

    /// Time `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id, &mut |b| f(b, input));
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let quick = quick_mode();
        let budget = sample_budget();
        let samples = if quick { 1 } else { self.samples };
        // Warm-up sample (discarded).
        let mut warm =
            Bencher { iters_done: 0, elapsed: Duration::ZERO, target: budget / 2, quick };
        f(&mut warm);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO, target: budget, quick };
            f(&mut b);
            per_iter.push(b.ns_per_iter());
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let label = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        let mut line = format!("{label:<40} time: [{} .. {}]", fmt_ns(min), fmt_ns(mean));
        if let Some(t) = self.throughput {
            let (units, suffix) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if mean > 0.0 {
                line.push_str(&format!("  thrpt: {} {suffix}", fmt_si(units / (mean * 1e-9))));
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: Duration::from_millis(1),
            quick: true,
        };
        let mut runs = 0u64;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.iters_done, 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("probe", 8).name, "probe/8");
        assert_eq!(BenchmarkId::from_parameter("AMAC").name, "AMAC");
    }
}
