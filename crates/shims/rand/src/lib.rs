//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses (see
//! `crates/shims/README.md`): a seedable generator, `gen_range` over
//! integer ranges, slice shuffling and a uniform distribution. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for workload generation, deterministic per seed, not
//! cryptographic.

use core::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from an integer range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value (bool only, which is all we need).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Map `x` into `0..span` by multiply-shift (Lemire); the bias of at most
/// `span / 2^64` is irrelevant for workload generation.
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Avoid the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::reduce(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod distributions {
    use super::{reduce, RngCore};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform integer distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over the half-open range `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "empty range");
            Uniform { lo, hi }
        }
    }

    macro_rules! impl_uniform {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore>(&self, rng: &mut R) -> $t {
                    let span = (self.hi - self.lo) as u64;
                    self.lo + (reduce(rng.next_u64(), span) as $t)
                }
            }
        )*};
    }

    impl_uniform!(u8, u16, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
