//! Minimal offline stand-in for the `libc` crate.
//!
//! Declares only the symbols `amac_metrics::perf` needs; they resolve
//! against the platform C library that `std` already links.

#![allow(non_camel_case_types, non_upper_case_globals)]

pub type c_int = i32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = core::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;

/// `perf_event_open(2)` syscall number.
#[cfg(target_arch = "x86_64")]
pub const SYS_perf_event_open: c_long = 298;
#[cfg(target_arch = "aarch64")]
pub const SYS_perf_event_open: c_long = 241;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_perf_event_open: c_long = -1;

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    #[test]
    fn close_of_invalid_fd_fails_without_crashing() {
        let r = unsafe { super::close(-1) };
        assert_eq!(r, -1);
    }
}
