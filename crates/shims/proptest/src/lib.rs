//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, integer-range and tuple strategies (up to 6-ary),
//! `prop::collection::{vec, btree_set, btree_map}`, [`Strategy::prop_map`],
//! `bool::ANY`, the `prop_assert*` / `prop_assume!` macros and
//! [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test RNG (seeded from the test path and case index),
//! so failures are reproducible. **No shrinking** — a failing case reports
//! its inputs via the assertion message only.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Per-run configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reject: bool,
    msg: String,
}

impl TestCaseError {
    /// An assertion failure (fails the test).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { reject: false, msg: msg.into() }
    }

    /// A rejected case (`prop_assume!` — skipped, not a failure).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError { reject: true, msg: msg.into() }
    }

    /// True for `prop_assume!` rejections.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-case random source (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BTreeMap, BTreeSet, Range, Strategy, TestRng};

    /// `Vec` of `elem` with a length drawn from `sizes`.
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    /// `BTreeSet` of `elem` with a target size drawn from `sizes`.
    ///
    /// Best-effort: if the element domain is too small to reach the target
    /// size, the set is returned smaller after a bounded number of draws
    /// (mirrors proptest, which also treats size as an upper bound here).
    pub fn btree_set<S: Strategy>(elem: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, sizes }
    }

    /// `BTreeMap` with keys from `key`, values from `val`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        val: V,
        sizes: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, val, sizes }
    }

    fn draw_size(sizes: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(sizes.start < sizes.end, "empty size range");
        sizes.start + rng.below((sizes.end - sizes.start) as u64) as usize
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = draw_size(&self.sizes, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = draw_size(&self.sizes, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        sizes: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = draw_size(&self.sizes, rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.key.generate(rng), self.val.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The common imports (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Property-test entry point; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        Ok(()) => {}
                        Err(e) if e.is_reject() => {}
                        Err(e) => panic!(
                            "proptest {}: case {} failed: {}",
                            stringify!($name), case, e
                        ),
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        let mut c = crate::TestRng::for_case("x::y", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 1usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            v in prop::collection::vec((0u64..5, 0u64..5), 2..7),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assume!(flag);
            for &(a, b) in &v {
                prop_assert!(a < 5, "a was {}", a);
                prop_assert!(b < 5);
            }
        }

        #[test]
        fn maps_and_sets_generate(
            s in prop::collection::btree_set(0u64..1000, 1..50),
            m in prop::collection::btree_map(0u64..1000, 0u64..10, 0..50),
        ) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() < 50);
            prop_assert!(m.len() < 50);
        }

        #[test]
        fn prop_map_applies(n in (1u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
