//! The bulk-loaded B+-tree.

use crate::node::{InnerNode, LeafNode, FANOUT_CHILDREN, FANOUT_KEYS};
use amac_mem::arena::Arena;
use amac_workload::Relation;

/// A static, bulk-loaded B+-tree over arena-allocated two-cache-line nodes.
///
/// Bulk loading packs leaves full and builds perfectly balanced upper
/// levels, so **every lookup dereferences exactly [`height`] nodes** — a
/// deliberately *regular* pointer chase. It is the counterpoint to the
/// random [`Bst`](https://docs.rs) of §5.3: on this structure the paper's
/// static schedules (GP/SPP) can provision their stage budget `N` exactly,
/// while the unbalanced BST makes lookup depth vary and favours AMAC.
///
/// The tree is **built single-threaded and probed read-only**; no latches,
/// safety by phase separation (same discipline as `amac-tree`).
///
/// [`height`]: BPlusTree::height
pub struct BPlusTree {
    inners: Arena<InnerNode>,
    leaves: Arena<LeafNode>,
    root: *const u8,
    first_leaf: *const LeafNode,
    height: usize,
    len: usize,
}

// SAFETY: mutation only during single-threaded build (`from_sorted` owns
// the arenas exclusively); afterwards all access is read-only and every
// pointer targets the owned arenas.
unsafe impl Send for BPlusTree {}
unsafe impl Sync for BPlusTree {}

impl BPlusTree {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            inners: Arena::new(),
            leaves: Arena::new(),
            root: core::ptr::null(),
            first_leaf: core::ptr::null(),
            height: 0,
            len: 0,
        }
    }

    /// Bulk-load from key-ascending, **strictly unique** `(key, payload)`
    /// pairs.
    ///
    /// # Panics
    /// In debug builds, panics if `pairs` is unsorted or contains
    /// duplicates (release builds would silently build a tree whose lookup
    /// results for the duplicated keys are unspecified).
    pub fn from_sorted(pairs: &[(u64, u64)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk load requires strictly ascending keys"
        );
        if pairs.is_empty() {
            return Self::new();
        }
        let n_leaves = pairs.len().div_ceil(FANOUT_KEYS);
        let mut tree = BPlusTree {
            inners: Arena::with_capacity(n_leaves.div_ceil(FANOUT_CHILDREN) * 2),
            leaves: Arena::with_capacity(n_leaves),
            root: core::ptr::null(),
            first_leaf: core::ptr::null(),
            height: 0,
            len: pairs.len(),
        };

        // Leaf level: packed full, linked left to right. `level` collects
        // (subtree-first-key, node) pairs for the level above.
        let mut level: Vec<(u64, *const u8)> = Vec::with_capacity(n_leaves);
        let mut prev: *mut LeafNode = core::ptr::null_mut();
        for chunk in pairs.chunks(FANOUT_KEYS) {
            let leaf = tree.leaves.alloc();
            // SAFETY: alloc returns a valid, default-initialized node that
            // we exclusively own during build.
            unsafe {
                for (i, (k, p)) in chunk.iter().enumerate() {
                    (*leaf).keys[i] = *k;
                    (*leaf).payloads[i] = *p;
                }
                (*leaf).count = chunk.len() as u16;
                if prev.is_null() {
                    tree.first_leaf = leaf;
                } else {
                    (*prev).next = leaf;
                }
            }
            prev = leaf;
            level.push((chunk[0].0, leaf as *const u8));
        }

        // Upper levels: group up to FANOUT_CHILDREN children per inner
        // node; the separator for child i (i > 0) is the first key of its
        // subtree.
        while level.len() > 1 {
            let mut next_level: Vec<(u64, *const u8)> =
                Vec::with_capacity(level.len().div_ceil(FANOUT_CHILDREN));
            for group in level.chunks(FANOUT_CHILDREN) {
                let inner = tree.inners.alloc();
                // SAFETY: as above — fresh node, exclusive during build.
                unsafe {
                    for (i, (first_key, child)) in group.iter().enumerate() {
                        (*inner).children[i] = *child;
                        if i > 0 {
                            (*inner).keys[i - 1] = *first_key;
                        }
                    }
                    (*inner).count = (group.len() - 1) as u16;
                }
                next_level.push((group[0].0, inner as *const u8));
            }
            level = next_level;
            tree.height += 1;
        }

        tree.root = level[0].1;
        tree.height += 1; // count the leaf level
        tree
    }

    /// Bulk-load from a relation: tuples are sorted by key; on duplicate
    /// keys the **last** payload in storage order wins (matching
    /// `Bst::insert` replacement semantics).
    pub fn build(rel: &Relation) -> Self {
        let mut pairs: Vec<(u64, u64)> = rel.tuples.iter().map(|t| (t.key, t.payload)).collect();
        pairs.sort_by_key(|(k, _)| *k);
        // Keep the last occurrence of each key (stable sort preserves
        // storage order within equal keys).
        let mut dedup: Vec<(u64, u64)> = Vec::with_capacity(pairs.len());
        for p in pairs {
            match dedup.last_mut() {
                Some(last) if last.0 == p.0 => *last = p,
                _ => dedup.push(p),
            }
        }
        Self::from_sorted(&dedup)
    }

    /// Root pointer (null when empty) — what AMAC's stage 0 prefetches.
    /// Interpret via [`height`](Self::height): it is a [`LeafNode`] when
    /// `height == 1`, an [`InnerNode`] when `height > 1`.
    #[inline(always)]
    pub fn root_ptr(&self) -> *const u8 {
        self.root
    }

    /// Levels of nodes a lookup dereferences (0 for an empty tree; 1 when
    /// the root is a leaf).
    #[inline(always)]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of stored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reference search (the no-prefetch baseline walk).
    pub fn get(&self, key: u64) -> Option<u64> {
        if self.root.is_null() {
            return None;
        }
        let mut ptr = self.root;
        // SAFETY: read-only phase; height tells us each level's node kind
        // and every pointer targets the owned arenas.
        unsafe {
            for _ in 1..self.height {
                ptr = (*ptr.cast::<InnerNode>()).select_child(key);
            }
            (*ptr.cast::<LeafNode>()).lookup(key)
        }
    }

    /// All `(key, payload)` pairs with `start <= key <= end`, in key order
    /// (leaf-link scan).
    pub fn range(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.root.is_null() || start > end {
            return out;
        }
        // Descend to the leaf that could contain `start`.
        let mut ptr = self.root;
        // SAFETY: read-only phase, as in `get`.
        unsafe {
            for _ in 1..self.height {
                ptr = (*ptr.cast::<InnerNode>()).select_child(start);
            }
            let mut leaf = ptr.cast::<LeafNode>();
            while !leaf.is_null() {
                let l = &*leaf;
                for i in 0..l.count as usize {
                    if l.keys[i] > end {
                        return out;
                    }
                    if l.keys[i] >= start {
                        out.push((l.keys[i], l.payloads[i]));
                    }
                }
                leaf = l.next;
            }
        }
        out
    }

    /// Every `(key, payload)` pair in key order (full leaf-link scan).
    pub fn iter_all(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut leaf = self.first_leaf;
        while !leaf.is_null() {
            // SAFETY: read-only phase.
            unsafe {
                let l = &*leaf;
                for i in 0..l.count as usize {
                    out.push((l.keys[i], l.payloads[i]));
                }
                leaf = l.next;
            }
        }
        out
    }

    /// Node-count and fill statistics.
    pub fn stats(&self) -> BTreeStats {
        BTreeStats {
            height: self.height,
            inner_nodes: self.inners.len(),
            leaf_nodes: self.leaves.len(),
            keys: self.len,
            leaf_fill: if self.leaves.is_empty() {
                0.0
            } else {
                self.len as f64 / (self.leaves.len() * FANOUT_KEYS) as f64
            },
        }
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Shape statistics for a bulk-loaded tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BTreeStats {
    /// Node levels (see [`BPlusTree::height`]).
    pub height: usize,
    /// Interior node count.
    pub inner_nodes: usize,
    /// Leaf node count.
    pub leaf_nodes: usize,
    /// Stored keys.
    pub keys: usize,
    /// Mean leaf occupancy in [0, 1].
    pub leaf_fill: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_workload::Tuple;

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.get(0), None);
        assert!(t.root_ptr().is_null());
        assert!(t.iter_all().is_empty());
        assert!(t.range(0, u64::MAX).is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let pairs: Vec<(u64, u64)> = (0..5).map(|k| (k * 2, k)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        assert_eq!(t.height(), 1, "≤7 keys fit in the root leaf");
        assert_eq!(t.len(), 5);
        for (k, p) in &pairs {
            assert_eq!(t.get(*k), Some(*p));
        }
        assert_eq!(t.get(1), None);
        assert_eq!(t.get(100), None);
    }

    #[test]
    fn two_level_tree_boundaries() {
        // 8 keys forces a split into two leaves plus a root.
        let pairs: Vec<(u64, u64)> = (1..=8).map(|k| (k, k * 10)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        assert_eq!(t.height(), 2);
        for (k, p) in &pairs {
            assert_eq!(t.get(*k), Some(*p), "key {k}");
        }
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn all_keys_found_across_heights() {
        // Sizes straddling each height transition for fanout 7/8:
        // 7 (h1), 8 (h2), 7*8=56 (h2), 57 (h3), 7*8*8=448 (h3), 449 (h4).
        for n in [1usize, 7, 8, 56, 57, 448, 449, 10_000] {
            let pairs: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 3, k)).collect();
            let t = BPlusTree::from_sorted(&pairs);
            assert_eq!(t.len(), n);
            for (k, p) in &pairs {
                assert_eq!(t.get(*k), Some(*p), "n={n} key={k}");
            }
            assert_eq!(t.get(1), None, "n={n}");
            // Height is ceil(log8(leaves)) + 1 and at least 1.
            let leaves = n.div_ceil(7);
            let mut h = 1usize;
            let mut width = leaves;
            while width > 1 {
                width = width.div_ceil(8);
                h += 1;
            }
            assert_eq!(t.height(), h, "n={n}");
        }
    }

    #[test]
    fn iter_all_returns_sorted_input() {
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 7 + 1, k)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        assert_eq!(t.iter_all(), pairs);
    }

    #[test]
    fn range_scan_inclusive_bounds() {
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 10, k)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        let r = t.range(95, 250);
        assert_eq!(
            r,
            vec![
                (100, 10),
                (110, 11),
                (120, 12),
                (130, 13),
                (140, 14),
                (150, 15),
                (160, 16),
                (170, 17),
                (180, 18),
                (190, 19),
                (200, 20),
                (210, 21),
                (220, 22),
                (230, 23),
                (240, 24),
                (250, 25)
            ]
        );
        assert_eq!(t.range(0, 0), vec![(0, 0)], "point range");
        assert!(t.range(991, 999_999).is_empty(), "past the end");
        assert!(t.range(50, 20).is_empty(), "inverted range");
    }

    #[test]
    fn build_from_relation_dedups_last_wins() {
        let rel = Relation::from_tuples(vec![
            Tuple::new(5, 50),
            Tuple::new(3, 30),
            Tuple::new(5, 51), // later duplicate replaces
            Tuple::new(1, 10),
        ]);
        let t = BPlusTree::build(&rel);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(5), Some(51));
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(1), Some(10));
    }

    #[test]
    fn separator_equal_key_goes_right() {
        // Key 7 is the first key of leaf 2 and therefore a separator; an
        // equal search key must descend right and still find it.
        let pairs: Vec<(u64, u64)> = (0..14u64).map(|k| (k, k + 100)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        assert_eq!(t.height(), 2);
        assert_eq!(t.get(7), Some(107));
        assert_eq!(t.get(6), Some(106));
    }

    #[test]
    fn stats_reflect_shape() {
        let pairs: Vec<(u64, u64)> = (0..448u64).map(|k| (k, k)).collect();
        let t = BPlusTree::from_sorted(&pairs);
        let s = t.stats();
        assert_eq!(s.keys, 448);
        assert_eq!(s.leaf_nodes, 64);
        assert_eq!(s.inner_nodes, 8 + 1);
        assert_eq!(s.height, 3);
        assert!((s.leaf_fill - 1.0).abs() < 1e-9, "bulk load packs leaves full");
    }

    #[test]
    fn matches_std_btreemap_model() {
        use std::collections::BTreeMap;
        let rel = Relation::sparse_unique(5000, 77);
        let t = BPlusTree::build(&rel);
        let model: BTreeMap<u64, u64> = rel.tuples.iter().map(|t| (t.key, t.payload)).collect();
        for (k, v) in &model {
            assert_eq!(t.get(*k), Some(*v));
            assert_eq!(t.get(k.wrapping_add(1)).is_some(), model.contains_key(&(k + 1)));
        }
        assert_eq!(t.iter_all(), model.into_iter().collect::<Vec<_>>());
    }
}
