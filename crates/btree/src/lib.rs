//! # amac-btree — bulk-loaded cache-conscious B+-tree
//!
//! A static B+-tree with two-cache-line (128-byte) nodes, bulk-loaded
//! perfectly balanced so that every lookup dereferences exactly
//! [`BPlusTree::height`] nodes.
//!
//! ## Why a *balanced* tree in an AMAC reproduction?
//!
//! The paper's §5.3 tree experiment uses a random **unbalanced** BST
//! precisely because its variable lookup depth defeats static prefetch
//! schedules. This crate provides the *regular* counterpart the paper's
//! argument implies (and its citations [10, 16, 23] build): with bulk-load
//! balance the static stage budget `N = height` fits **every** lookup, so
//! GP and SPP lose nothing to no-ops or bailouts. Benchmarking both trees
//! with the same executors isolates *irregularity itself* as the variable —
//! see `bench/bin/btree_sweep` and EXPERIMENTS.md.
//!
//! Nodes deliberately keep the dependent-access property: the next node's
//! address is only known after the current node's keys are compared, so
//! tree descent stays a pointer chase that hardware prefetchers cannot
//! cover.

mod node;
mod tree;

pub use node::{InnerNode, LeafNode, FANOUT_CHILDREN, FANOUT_KEYS};
pub use tree::{BPlusTree, BTreeStats};
