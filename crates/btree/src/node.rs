//! B+-tree node layouts.
//!
//! Both node kinds occupy exactly two cache lines (128 bytes) and are
//! 64-byte aligned, following the cache-conscious index designs the paper
//! cites ([10] fractal B+-trees, [16] FAST, [23] CSS-trees): a node fetch
//! touches a fixed, prefetchable pair of lines, and the child address is
//! only known *after* the fetched keys are compared — the dependent-access
//! pattern AMAC targets.

/// Keys per node. With 8-byte keys this fills an inner node's two cache
/// lines exactly: 7 keys + 8 child pointers + count = 128 bytes.
pub const FANOUT_KEYS: usize = 7;
/// Children per inner node (`FANOUT_KEYS + 1`).
pub const FANOUT_CHILDREN: usize = FANOUT_KEYS + 1;

/// Interior node: `count` separator keys and `count + 1` children.
///
/// `children[i]` holds keys `< keys[i]`; `children[count]` holds the rest.
/// Separators are copied up from the first key of the right sibling during
/// bulk load, so a search key equal to a separator descends **right**.
#[repr(C, align(64))]
pub struct InnerNode {
    /// Separator keys (`keys[..count]` are valid, ascending).
    pub keys: [u64; FANOUT_KEYS],
    /// Child pointers (`children[..=count]` are valid). Children are
    /// `InnerNode`s above the leaf level and `LeafNode`s directly above it;
    /// the tree's height disambiguates, so no per-node tag is needed.
    pub children: [*const u8; FANOUT_CHILDREN],
    /// Number of valid separator keys.
    pub count: u16,
}

impl Default for InnerNode {
    fn default() -> Self {
        InnerNode {
            keys: [0; FANOUT_KEYS],
            children: [core::ptr::null(); FANOUT_CHILDREN],
            count: 0,
        }
    }
}

impl InnerNode {
    /// Child to descend into for `key`: the first child whose key range
    /// can contain it (branchless-friendly linear scan; nodes are tiny).
    #[inline(always)]
    pub fn select_child(&self, key: u64) -> *const u8 {
        let n = self.count as usize;
        let mut i = 0usize;
        while i < n && key >= self.keys[i] {
            i += 1;
        }
        self.children[i]
    }
}

/// Leaf node: parallel key/payload arrays plus a next-leaf link for
/// ordered scans.
#[repr(C, align(64))]
pub struct LeafNode {
    /// Keys (`keys[..count]` are valid, ascending).
    pub keys: [u64; FANOUT_KEYS],
    /// Payload for `keys[i]`.
    pub payloads: [u64; FANOUT_KEYS],
    /// Right sibling in key order, or null for the last leaf.
    pub next: *const LeafNode,
    /// Number of valid entries.
    pub count: u16,
}

impl Default for LeafNode {
    fn default() -> Self {
        LeafNode {
            keys: [0; FANOUT_KEYS],
            payloads: [0; FANOUT_KEYS],
            next: core::ptr::null(),
            count: 0,
        }
    }
}

impl LeafNode {
    /// Payload stored for `key`, if present in this leaf.
    #[inline(always)]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let n = self.count as usize;
        for i in 0..n {
            if self.keys[i] == key {
                return Some(self.payloads[i]);
            }
            if self.keys[i] > key {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_fill_two_cache_lines() {
        assert_eq!(core::mem::size_of::<InnerNode>(), 128);
        assert_eq!(core::mem::align_of::<InnerNode>(), 64);
        assert_eq!(core::mem::size_of::<LeafNode>(), 128);
        assert_eq!(core::mem::align_of::<LeafNode>(), 64);
    }

    #[test]
    fn select_child_routes_by_separator() {
        let mut n = InnerNode::default();
        n.keys[0] = 10;
        n.keys[1] = 20;
        n.count = 2;
        let c: Vec<*const u8> = (0..3).map(|i| (0x1000 + i * 0x100) as *const u8).collect();
        n.children[..3].copy_from_slice(&c);
        assert_eq!(n.select_child(5), c[0]);
        assert_eq!(n.select_child(9), c[0]);
        assert_eq!(n.select_child(10), c[1], "equal key descends right");
        assert_eq!(n.select_child(15), c[1]);
        assert_eq!(n.select_child(20), c[2]);
        assert_eq!(n.select_child(u64::MAX), c[2]);
    }

    #[test]
    fn leaf_lookup_hits_and_misses() {
        let mut l = LeafNode::default();
        for (i, k) in [2u64, 4, 6, 8].iter().enumerate() {
            l.keys[i] = *k;
            l.payloads[i] = k * 100;
        }
        l.count = 4;
        assert_eq!(l.lookup(2), Some(200));
        assert_eq!(l.lookup(8), Some(800));
        assert_eq!(l.lookup(5), None);
        assert_eq!(l.lookup(0), None);
        assert_eq!(l.lookup(9), None);
    }

    #[test]
    fn empty_nodes_reject_everything() {
        let l = LeafNode::default();
        assert_eq!(l.lookup(0), None);
        let i = InnerNode::default();
        assert_eq!(i.select_child(42), i.children[0]);
    }
}
